// Labeled runtime metrics: counters, gauges and log-bucketed histograms.
//
// Design constraints (ISSUE 2):
//  - lock-cheap on the hot path: Get*() hands out stable pointers; all
//    mutation is relaxed atomics on those handles. The registry mutex is
//    taken only at registration and snapshot time, never per observation.
//  - zero-cost when disabled: components hold a nullable handle/registry
//    pointer and skip instrumentation on nullptr — one predictable branch.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace prompt {

/// \brief Metric labels as ordered key=value pairs. Order is part of the
/// identity (callers pass them in a fixed order, so no canonicalization).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// \brief Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// \brief Concurrent histogram over exponential (power-of-two) buckets.
///
/// Bucket i counts observations in (2^(i-1), 2^i]; bucket 0 holds values
/// <= 1 and the last bucket is open-ended. Quantiles interpolate linearly
/// inside the winning bucket — ~2x worst-case relative error, plenty for
/// task-cost and latency distributions while keeping Observe() to two
/// relaxed atomic adds and no allocation.
class HistogramMetric {
 public:
  static constexpr size_t kBuckets = 64;

  /// NaN observations are dropped — one NaN folded into sum_ would poison
  /// the mean and every later sum forever.
  void Observe(double v) {
    if (std::isnan(v)) return;
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const {
    const uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }

  /// q in [0, 1]. Approximate (bucket-interpolated) quantile. Guaranteed
  /// edges: an empty histogram returns 0.0; q = 0 returns the lower edge of
  /// the first occupied bucket and q = 1 the upper edge of the last; a NaN
  /// q is rejected by returning NaN. Out-of-range q aborts.
  double Quantile(double q) const;

  /// Snapshot of per-bucket counts (index i = upper bound 2^i).
  std::array<uint64_t, kBuckets> BucketCounts() const;

 private:
  static size_t BucketOf(double v);

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// \brief One metric's state at snapshot time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  MetricLabels labels;
  Kind kind = Kind::kCounter;
  /// Counter/gauge value; histogram mean.
  double value = 0;
  /// Histogram extras (zero for counters/gauges).
  uint64_t count = 0;
  double sum = 0;
  double p50 = 0, p95 = 0, p99 = 0;

  /// `name{k=v,...}` — the stable identity string.
  std::string FullName() const;
};

/// \brief Owner and directory of all metrics. Handles returned by Get*()
/// stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  PROMPT_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  /// Returns the counter registered under (name, labels), creating it on
  /// first use. Aborts if the name is already registered as another kind.
  Counter* GetCounter(std::string_view name, MetricLabels labels = {});
  Gauge* GetGauge(std::string_view name, MetricLabels labels = {});
  HistogramMetric* GetHistogram(std::string_view name, MetricLabels labels = {});

  /// Point-in-time view of every registered metric, sorted by full name.
  std::vector<MetricSample> Snapshot() const;

  size_t size() const;

 private:
  struct Entry {
    MetricSample::Kind kind;
    std::string name;
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry* FindOrCreate(std::string_view name, MetricLabels labels,
                      MetricSample::Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace prompt
