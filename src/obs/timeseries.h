// Continuous observability: a fixed-capacity ring of per-batch snapshots of
// the partition-quality signals (max/mean block load ratio, reduce-bucket
// imbalance, split-key fraction, shard ring occupancy, recovery time, ...)
// plus derived windowed aggregates (EWMA, p50/p95/p99 over the last W
// batches). Fed once per batch from Observability::OnBatchComplete — never
// on the per-tuple path — and snapshotted by the HTTP exporter's
// /timeseries.json endpoint, so reads and the engine's writes synchronize on
// one mutex taken once per batch.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"
#include "obs/batch_report.h"

namespace prompt {

/// \brief The per-batch signals the time series tracks. Fixed at compile
/// time so a point is one flat array — no per-batch allocation beyond the
/// ring slot.
enum class TimeSeriesSignal : size_t {
  kLatencyUs = 0,       ///< end-to-end batch latency
  kProcessingUs,        ///< overflow + map + reduce (+ recovery) makespans
  kQueueUs,             ///< wait behind earlier batches
  kBlockLoadRatio,      ///< max/mean Map block size (1.0 = balanced)
  kBucketImbalance,     ///< reduce-bucket BSI (Eqn. 3, tuples over average)
  kSplitKeyFrac,        ///< split keys / distinct keys in the batch plan
  kRingOccupancyFrac,   ///< max ingest-ring occupancy across shards
  kRecoveryUs,          ///< recovery work charged to the batch
  kTuples,              ///< batch size (rate proxy at fixed interval)
  kActiveTechnique,     ///< PartitionerType that sealed the batch (-1 n/a)
  kHeadCoverage,        ///< sketch mode: exact-tracked tuple fraction (1 = exact)
  kSketchErrorFrac,     ///< sketch mode: summed count-error / batch tuples
  kSignalCount
};

inline constexpr size_t kTimeSeriesSignals =
    static_cast<size_t>(TimeSeriesSignal::kSignalCount);

/// Stable wire name of a signal (JSON keys, bench signal ids).
std::string_view TimeSeriesSignalName(TimeSeriesSignal signal);

/// \brief One batch's values of every tracked signal.
struct TimeSeriesPoint {
  uint64_t batch_id = 0;
  std::array<double, kTimeSeriesSignals> values{};

  double value(TimeSeriesSignal s) const {
    return values[static_cast<size_t>(s)];
  }
  void set(TimeSeriesSignal s, double v) {
    values[static_cast<size_t>(s)] = v;
  }
};

/// \brief Windowed summary of one signal over the last W retained batches.
struct WindowAggregate {
  size_t count = 0;  ///< batches the aggregate covers (<= W)
  double last = 0;   ///< newest observation
  double ewma = 0;   ///< exponentially-weighted mean over the whole run
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// \brief Time-series configuration.
struct TimeSeriesOptions {
  /// Ring capacity in batches; the oldest point is overwritten at capacity.
  size_t capacity = 1024;
  /// Default window W for the derived aggregates.
  uint32_t window = 32;
  /// EWMA weight of the newest batch.
  double ewma_alpha = 0.2;
};

/// \brief Fixed-capacity ring of per-batch signal snapshots with derived
/// aggregates. Thread-safe: one mutex around pushes and reads (both are
/// per-batch / per-scrape, never per-tuple).
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesOptions options = {});
  PROMPT_DISALLOW_COPY_AND_ASSIGN(TimeSeriesStore);

  /// Derives every signal from the report and pushes one point.
  void Observe(const BatchReport& report) { Push(PointFrom(report)); }

  /// Pushes an already-built point (tests, replays) and steps the EWMAs.
  void Push(const TimeSeriesPoint& point);

  /// Signal derivation from a report, shared with the autopsy rules.
  static TimeSeriesPoint PointFrom(const BatchReport& report);

  /// Points currently retained (<= capacity).
  size_t size() const;
  size_t capacity() const { return options_.capacity; }
  /// Batches observed over the store's lifetime (>= size once wrapped).
  uint64_t total_observed() const;

  /// The newest `n` points, oldest first. n = 0 returns everything retained.
  std::vector<TimeSeriesPoint> Tail(size_t n = 0) const;

  /// Windowed aggregate of one signal over the last `window` batches
  /// (0 = the configured default window).
  WindowAggregate Aggregate(TimeSeriesSignal signal, uint32_t window = 0) const;

  /// One JSON object: configuration, per-signal windowed aggregates and the
  /// retained points (the /timeseries.json response body).
  void WriteJson(std::ostream* out) const;

  const TimeSeriesOptions& options() const { return options_; }

 private:
  /// Points of the last `window` batches, oldest first. Caller holds mu_.
  size_t WindowSpanLocked(uint32_t window) const;
  WindowAggregate AggregateLocked(TimeSeriesSignal signal,
                                  uint32_t window) const;

  TimeSeriesOptions options_;
  mutable std::mutex mu_;
  std::vector<TimeSeriesPoint> ring_;
  size_t next_ = 0;  ///< ring slot the next push writes
  size_t size_ = 0;
  uint64_t total_ = 0;
  std::array<double, kTimeSeriesSignals> ewma_{};
  bool ewma_init_ = false;
};

}  // namespace prompt
