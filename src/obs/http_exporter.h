// Minimal embedded HTTP server exporting live telemetry from a running
// engine: Prometheus text exposition of the MetricsRegistry (`/metrics`),
// the per-batch time series with windowed aggregates (`/timeseries.json`,
// per-tenant stores via `?tenant=<id>` with the index at `/tenants.json`)
// and a liveness probe (`/healthz`). One accept thread, one request per
// connection, responses built from the same snapshot paths the file sinks
// use — the engine's hot path is never touched by a scrape (registry
// snapshots and time-series reads take their own mutexes once per request).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"

namespace prompt {

/// \brief Prometheus text exposition (version 0.0.4) of a registry
/// snapshot. Counters/gauges map directly; histograms export as summaries
/// (quantile-labeled series plus _sum and _count).
std::string PrometheusExposition(const std::vector<MetricSample>& snapshot);

/// \brief What /healthz reports — the engine publishes a fresh snapshot
/// after every batch, so a probe sees real run health, not a bare 200.
struct HealthStatus {
  /// A recovery scan or replication shortfall lost data this process knows
  /// about (the same flag RunSummary/DurableRecovery carry).
  bool data_loss = false;
  /// "ok", or the engine's construction failure (Status::ToString()).
  std::string init_status = "ok";
  /// Last published batch id; -1 before the first batch completes.
  int64_t last_batch_id = -1;
  /// Flight-recorder bytes appended but not yet fsynced (0 when the journal
  /// is off or fully durable) — how much record/replay evidence a crash
  /// right now would lose.
  uint64_t journal_lag_bytes = 0;
};

/// \brief Embedded telemetry HTTP server.
///
/// Serves GET /metrics, /timeseries.json and /healthz until Stop() (also run
/// by the destructor). Either source pointer may be nullptr — the matching
/// endpoint then answers 404 while the others keep working.
class HttpExporter {
 public:
  /// Neither pointer is owned; both must outlive the exporter.
  HttpExporter(const MetricsRegistry* registry,
               const TimeSeriesStore* timeseries);
  ~HttpExporter();
  PROMPT_DISALLOW_COPY_AND_ASSIGN(HttpExporter);

  /// Binds and listens on `port` (0 = any free port, see port()) and starts
  /// the accept thread. May be called once.
  Status Start(uint16_t port);

  /// Stops serving and joins the accept thread (idempotent).
  void Stop();

  bool serving() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (resolves port 0 to the kernel's pick). 0 before Start.
  uint16_t port() const { return port_; }

  /// Requests answered so far (any status).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Publishes a new /healthz snapshot. Thread-safe against in-flight
  /// scrapes; the last write wins.
  void UpdateHealth(const HealthStatus& health);

  /// Registers a named (per-tenant) time-series store, served at
  /// `/timeseries.json?tenant=<name>` and listed by `/tenants.json`. Not
  /// owned; must outlive the exporter. Thread-safe against in-flight
  /// scrapes; a re-registered name replaces the earlier store.
  void AddTimeSeries(const std::string& name, const TimeSeriesStore* store);

  /// Response-body dispatch, exposed for tests and non-HTTP reuse. `target`
  /// is the request path with an optional query string (`?tenant=<id>`
  /// selects a named time series). Returns false for unknown paths and
  /// unknown tenants. `content_type` is set on success.
  bool RenderPath(const std::string& target, std::string* body,
                  std::string* content_type) const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd) const;

  const MetricsRegistry* registry_;
  const TimeSeriesStore* timeseries_;
  /// Named per-tenant stores (insertion order = /tenants.json order).
  mutable std::mutex named_mu_;
  std::vector<std::pair<std::string, const TimeSeriesStore*>> named_;
  mutable std::mutex health_mu_;
  HealthStatus health_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  mutable std::atomic<uint64_t> requests_{0};
};

}  // namespace prompt
