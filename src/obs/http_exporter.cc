#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace prompt {

namespace {

/// Prometheus label rendering: `name{k="v",...}` with quoted, escaped
/// values — distinct from MetricSample::FullName's unquoted `k=v` identity.
std::string PrometheusSeries(const std::string& name,
                             const MetricLabels& labels,
                             const MetricLabels& extra = {}) {
  std::string out = name;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  bool first = true;
  auto append = [&out, &first](const MetricLabels& ls) {
    for (const auto& [k, v] : ls) {
      if (!first) out += ',';
      first = false;
      out += k;
      out += "=\"";
      for (char c : v) {
        if (c == '\\' || c == '"') out += '\\';
        if (c == '\n') {
          out += "\\n";
          continue;
        }
        out += c;
      }
      out += '"';
    }
  };
  append(labels);
  append(extra);
  out += '}';
  return out;
}

std::string PrometheusValue(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Value of `key` in an URL query string ("a=1&b=2"), "" when absent. No
/// percent-decoding — tenant ids are plain identifiers.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

/// JSON string escaping for the /tenants.json index.
std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '\\' || c == '"') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string PrometheusExposition(const std::vector<MetricSample>& snapshot) {
  std::string out;
  // The snapshot is sorted by FullName, which does not group label variants
  // of one metric adjacently ('{' sorts above '_'); dedupe TYPE lines by
  // name instead of relying on adjacency.
  std::vector<std::string> typed;
  auto type_line = [&out, &typed](const std::string& name, const char* type) {
    for (const auto& t : typed) {
      if (t == name) return;
    }
    typed.push_back(name);
    out += "# TYPE " + name + ' ' + type + '\n';
  };
  for (const MetricSample& s : snapshot) {
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        type_line(s.name, "counter");
        out += PrometheusSeries(s.name, s.labels) + ' ' +
               PrometheusValue(s.value) + '\n';
        break;
      case MetricSample::Kind::kGauge:
        type_line(s.name, "gauge");
        out += PrometheusSeries(s.name, s.labels) + ' ' +
               PrometheusValue(s.value) + '\n';
        break;
      case MetricSample::Kind::kHistogram: {
        // Exported as a summary: the registry keeps log-bucketed counts but
        // snapshots carry pre-computed quantiles, which is what dashboards
        // plot anyway.
        type_line(s.name, "summary");
        const std::pair<const char*, double> quantiles[] = {
            {"0.5", s.p50}, {"0.95", s.p95}, {"0.99", s.p99}};
        for (const auto& [q, v] : quantiles) {
          out += PrometheusSeries(s.name, s.labels, {{"quantile", q}}) + ' ' +
                 PrometheusValue(v) + '\n';
        }
        out += PrometheusSeries(s.name + "_sum", s.labels) + ' ' +
               PrometheusValue(s.sum) + '\n';
        out += PrometheusSeries(s.name + "_count", s.labels) + ' ' +
               std::to_string(s.count) + '\n';
        break;
      }
    }
  }
  return out;
}

HttpExporter::HttpExporter(const MetricsRegistry* registry,
                           const TimeSeriesStore* timeseries)
    : registry_(registry), timeseries_(timeseries) {}

HttpExporter::~HttpExporter() { Stop(); }

Status HttpExporter::Start(uint16_t port) {
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    return Status::Invalid("exporter already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("bind 127.0.0.1:" + std::to_string(port) + ": " +
                           err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("getsockname: " + err);
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&HttpExporter::AcceptLoop, this);
  return Status::OK();
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    // A short poll timeout bounds how long Stop() waits for the join.
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void HttpExporter::AddTimeSeries(const std::string& name,
                                 const TimeSeriesStore* store) {
  std::lock_guard<std::mutex> lock(named_mu_);
  for (auto& [n, s] : named_) {
    if (n == name) {
      s = store;
      return;
    }
  }
  named_.emplace_back(name, store);
}

void HttpExporter::UpdateHealth(const HealthStatus& health) {
  std::lock_guard<std::mutex> lock(health_mu_);
  health_ = health;
}

bool HttpExporter::RenderPath(const std::string& target, std::string* body,
                              std::string* content_type) const {
  const size_t qpos = target.find('?');
  const std::string path =
      qpos == std::string::npos ? target : target.substr(0, qpos);
  const std::string query =
      qpos == std::string::npos ? std::string() : target.substr(qpos + 1);
  if (path == "/healthz") {
    HealthStatus health;
    {
      std::lock_guard<std::mutex> lock(health_mu_);
      health = health_;
    }
    const bool healthy = !health.data_loss && health.init_status == "ok";
    std::ostringstream os;
    os << "{\"status\":" << JsonQuote(healthy ? "ok" : "degraded")
       << ",\"data_loss\":" << (health.data_loss ? "true" : "false")
       << ",\"init_status\":" << JsonQuote(health.init_status)
       << ",\"last_batch_id\":" << health.last_batch_id
       << ",\"journal_lag_bytes\":" << health.journal_lag_bytes << "}\n";
    *body = os.str();
    *content_type = "application/json";
    return true;
  }
  if (path == "/metrics" && registry_ != nullptr) {
    *body = PrometheusExposition(registry_->Snapshot());
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    return true;
  }
  if (path == "/timeseries.json") {
    const std::string tenant = QueryParam(query, "tenant");
    const TimeSeriesStore* store = timeseries_;
    if (!tenant.empty()) {
      store = nullptr;
      std::lock_guard<std::mutex> lock(named_mu_);
      for (const auto& [n, s] : named_) {
        if (n == tenant) {
          store = s;
          break;
        }
      }
    }
    if (store == nullptr) return false;  // unknown tenant / no default store
    std::ostringstream os;
    store->WriteJson(&os);
    *body = os.str();
    *content_type = "application/json";
    return true;
  }
  if (path == "/tenants.json") {
    std::ostringstream os;
    os << "{\"tenants\":[";
    std::lock_guard<std::mutex> lock(named_mu_);
    for (size_t i = 0; i < named_.size(); ++i) {
      if (i > 0) os << ',';
      os << JsonQuote(named_[i].first);
    }
    os << "]}";
    *body = os.str();
    *content_type = "application/json";
    return true;
  }
  return false;
}

void HttpExporter::HandleConnection(int fd) const {
  // Read just the request line; headers are irrelevant to the three
  // endpoints and connections are one-shot (Connection: close).
  char buf[2048];
  std::string request;
  while (request.find("\r\n") == std::string::npos &&
         request.size() < sizeof(buf)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t eol = request.find("\r\n");
  if (eol == std::string::npos) return;
  std::istringstream line(request.substr(0, eol));
  std::string method, target;
  line >> method >> target;
  // The query string passes through: RenderPath splits it off and uses it
  // to select per-tenant time-series stores.

  std::string body, content_type, status = "200 OK";
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "method not allowed\n";
    content_type = "text/plain; charset=utf-8";
  } else if (!RenderPath(target, &body, &content_type)) {
    status = "404 Not Found";
    body = "not found\n";
    content_type = "text/plain; charset=utf-8";
  }
  std::string response = "HTTP/1.1 " + status +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < response.size()) {
    const ssize_t n =
        ::send(fd, response.data() + sent, response.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace prompt
