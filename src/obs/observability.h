// Observability composite: one object owning the MetricsRegistry, the
// TraceRecorder and every configured sink, implementing the Observer
// interface the engine drives. EngineOptions::obs configures it; components
// (ingest pipeline, executor, elastic controller) receive the registry via
// BindMetrics and record through cached handles.
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/autopsy.h"
#include "obs/batch_report.h"
#include "obs/http_exporter.h"
#include "obs/metrics_registry.h"
#include "obs/observer.h"
#include "obs/sink.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace prompt {

/// \brief Observability configuration, grouped out of the flat EngineOptions.
struct ObservabilityOptions {
  /// Compute BSI/BCI/KSR/MPI per batch (costs a pass over fragments).
  bool collect_partition_metrics = false;
  MpiWeights mpi_weights;

  /// Maintain the MetricsRegistry (counters/gauges/histograms) during runs.
  bool metrics_enabled = false;
  /// Emit a metrics snapshot every N batches (0 = never). Implies
  /// metrics_enabled.
  uint32_t metrics_every = 0;
  /// Snapshot destination: a JSONL file path, or "" for human-readable text
  /// on stdout.
  std::string metrics_path;

  /// Build one structured BatchTrace per batch. Implied by trace_path or by
  /// any attached trace sink / external Observer.
  bool trace_enabled = false;
  /// JSONL trace destination (one record per batch); "" = no file.
  std::string trace_path;

  /// Retain a ring of per-batch signal points this many batches deep
  /// (0 = no time series). Implied (at 1024) by serve_port >= 0.
  size_t timeseries_capacity = 0;
  /// Window W of the derived p50/p95/p99 aggregates.
  uint32_t timeseries_window = 32;
  /// EWMA weight of the newest batch.
  double timeseries_alpha = 0.2;

  /// Run the per-batch skew autopsy (deterministic cause attribution).
  /// Implied by autopsy_path.
  bool autopsy_enabled = false;
  /// JSONL destination for `record=autopsy` rows; "" = no file.
  std::string autopsy_path;
  AutopsyOptions autopsy;

  /// Serve /metrics, /timeseries.json and /healthz on 127.0.0.1:port
  /// (0 = pick a free port, see Observability::exporter()->port();
  /// -1 = no server). Implies metrics_enabled and a time series.
  int serve_port = -1;
};

/// \brief Standard Observer implementation: registry + recorder + sinks.
class Observability final : public Observer {
 public:
  explicit Observability(ObservabilityOptions options);
  ~Observability() override;
  PROMPT_DISALLOW_COPY_AND_ASSIGN(Observability);

  /// Result of opening the sinks configured through paths in the options
  /// (OK when none were configured).
  const Status& init_status() const { return init_status_; }

  /// Any instrumentation consumer attached? The engine skips report/trace
  /// assembly entirely when false — the disabled path costs one branch.
  bool active() const {
    return metrics_enabled() || tracing_active() || !report_sinks_.empty() ||
           timeseries_ != nullptr || autopsy_enabled();
  }
  bool metrics_enabled() const { return registry_ != nullptr; }
  bool tracing_active() const {
    return options_.trace_enabled || !trace_sinks_.empty() ||
           !observers_.empty();
  }
  bool autopsy_enabled() const { return options_.autopsy_enabled; }

  /// Registry for component instrumentation; nullptr when metrics are
  /// disabled (callers skip on nullptr — the zero-cost contract).
  MetricsRegistry* registry() { return registry_.get(); }
  const MetricsRegistry* registry() const { return registry_.get(); }

  /// Recorder the engine lays batch timelines into (always valid; unused
  /// when tracing is inactive).
  TraceRecorder* recorder() { return &recorder_; }

  /// Per-batch time series; nullptr when timeseries_capacity is 0 and no
  /// server was requested.
  TimeSeriesStore* timeseries() { return timeseries_.get(); }
  const TimeSeriesStore* timeseries() const { return timeseries_.get(); }

  /// Embedded telemetry server; nullptr when serve_port < 0. Started by the
  /// constructor — a bind failure lands in init_status().
  HttpExporter* exporter() { return exporter_.get(); }
  const HttpExporter* exporter() const { return exporter_.get(); }

  /// The most recent batch's autopsy (kNone batch 0 before any batch ran).
  /// Only maintained while autopsy_enabled().
  const BatchAutopsy& last_autopsy() const { return last_autopsy_; }

  /// Writes one autopsy row tagged with a `tenant` column to the configured
  /// autopsy sink and updates last_autopsy(). The multi-tenant engine emits
  /// each tenant's verdict through this instead of OnBatchComplete, so the
  /// per-tenant autopsy streams stay separable in one JSONL file. No-op
  /// unless autopsy_enabled().
  void EmitAutopsy(const BatchAutopsy& autopsy, const std::string& tenant);

  void AddTraceSink(std::unique_ptr<TraceSink> sink);
  /// Per-batch report rows (ReportRecord) flow into these.
  void AddReportSink(std::unique_ptr<RecordSink> sink);
  /// Fan-out to an external observer (not owned; must outlive this object).
  void AddObserver(Observer* observer);

  const ObservabilityOptions& options() const { return options_; }

  /// Writes the current registry snapshot to the configured metrics
  /// destination (no-op when metrics are disabled).
  void EmitMetricsSnapshot(uint64_t after_batch);

  // Observer interface (driven by the engine).
  void OnRunStart(uint32_t num_batches) override;
  void OnBatchComplete(const BatchReport& report,
                       const BatchTrace& trace) override;
  void OnRunEnd() override;

 private:
  ObservabilityOptions options_;
  Status init_status_;

  std::unique_ptr<MetricsRegistry> registry_;
  TraceRecorder recorder_;
  std::vector<std::unique_ptr<TraceSink>> trace_sinks_;
  std::vector<std::unique_ptr<RecordSink>> report_sinks_;
  std::vector<Observer*> observers_;

  // Snapshot destination (JSONL file) when metrics_path is set.
  std::unique_ptr<FileRecordSink> metrics_file_;
  // Autopsy destination (JSONL file) when autopsy_path is set.
  std::unique_ptr<FileRecordSink> autopsy_file_;

  std::unique_ptr<TimeSeriesStore> timeseries_;
  BatchAutopsy last_autopsy_;

  // Cached hot-path handles (valid iff registry_ != nullptr).
  Counter* batches_total_ = nullptr;
  Counter* tuples_total_ = nullptr;
  HistogramMetric* latency_us_ = nullptr;
  HistogramMetric* queue_us_ = nullptr;
  HistogramMetric* partition_cost_us_ = nullptr;
  Gauge* w_gauge_ = nullptr;
  Gauge* map_tasks_gauge_ = nullptr;
  Gauge* reduce_tasks_gauge_ = nullptr;
  Gauge* shard_imbalance_gauge_ = nullptr;
  Gauge* ring_occupancy_gauge_ = nullptr;
  HistogramMetric* merge_us_ = nullptr;
  HistogramMetric* seal_barrier_us_ = nullptr;

  // Sketch-mode handles, registered lazily on the first heavy-hitter batch.
  Gauge* head_coverage_gauge_ = nullptr;
  Gauge* sketch_error_gauge_ = nullptr;
  Gauge* promoted_keys_gauge_ = nullptr;

  // Recovery handles, registered lazily on the first batch that did
  // recovery work — failure-free runs never see these series.
  Counter* batches_replayed_total_ = nullptr;
  Counter* tasks_retried_total_ = nullptr;
  Counter* tasks_speculated_total_ = nullptr;
  Gauge* under_replicated_gauge_ = nullptr;
  HistogramMetric* recovery_us_ = nullptr;

  // Declared last: destroyed first, so the accept thread joins before the
  // registry and time series it scrapes go away.
  std::unique_ptr<HttpExporter> exporter_;
};

/// \brief Lowers a BatchReport to the canonical 18-column row every writer
/// (CSV export, JSONL, promptctl table) shares. Column names and order are
/// the report_io CSV schema — code that round-trips CSVs depends on them.
Record ReportRecord(const BatchReport& report);

}  // namespace prompt
