#include "obs/sink.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <limits>

namespace prompt {

namespace {

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g",
                std::numeric_limits<double>::max_digits10, v);
  return buf;
}

}  // namespace

std::string FormatFieldValue(const RecordField& field) {
  struct Visitor {
    std::string operator()(uint64_t v) const {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
      return buf;
    }
    std::string operator()(int64_t v) const {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRId64, v);
      return buf;
    }
    std::string operator()(double v) const { return FormatDouble(v); }
    std::string operator()(const std::string& v) const { return v; }
  };
  return std::visit(Visitor{}, field.value);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void CsvSink::Write(const Record& record) {
  if (!wrote_header_) {
    wrote_header_ = true;
    bool first = true;
    for (const RecordField& f : record.fields()) {
      if (!first) *out_ << ',';
      first = false;
      *out_ << f.name;
    }
    *out_ << '\n';
  }
  bool first = true;
  for (const RecordField& f : record.fields()) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << FormatFieldValue(f);
  }
  *out_ << '\n';
}

void JsonlSink::Write(const Record& record) {
  *out_ << '{';
  bool first = true;
  for (const RecordField& f : record.fields()) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << '"' << JsonEscape(f.name) << "\":";
    if (std::holds_alternative<std::string>(f.value)) {
      *out_ << '"' << JsonEscape(std::get<std::string>(f.value)) << '"';
    } else {
      *out_ << FormatFieldValue(f);
    }
  }
  *out_ << "}\n";
}

void TableSink::Write(const Record& record) {
  auto pad = [&](const std::string& cell) {
    *out_ << cell;
    for (int i = static_cast<int>(cell.size()); i < width_; ++i) *out_ << ' ';
  };
  if (auto_header_ && !wrote_header_) {
    wrote_header_ = true;
    for (const RecordField& f : record.fields()) pad(f.name);
    *out_ << '\n';
  }
  for (const RecordField& f : record.fields()) {
    std::string cell = FormatFieldValue(f);
    // Tables are for reading, not round-tripping: clip long doubles.
    if (std::holds_alternative<double>(f.value) && cell.size() > 10) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.4g", std::get<double>(f.value));
      cell = buf;
    }
    pad(cell);
  }
  *out_ << '\n';
}

void JsonlTraceSink::Write(const BatchTrace& trace) {
  *out_ << "{\"batch_id\":" << trace.batch_id
        << ",\"start_us\":" << trace.batch_start
        << ",\"latency_us\":" << trace.latency
        << ",\"tuples\":" << trace.num_tuples << ",\"keys\":" << trace.num_keys
        << ",\"spans\":[";
  bool first = true;
  for (const TraceSpan& s : trace.spans) {
    if (!first) *out_ << ',';
    first = false;
    *out_ << "{\"name\":\"" << JsonEscape(s.name) << "\",\"start_us\":" << s.start
          << ",\"dur_us\":" << s.duration << ",\"depth\":" << s.depth << '}';
  }
  *out_ << "]}\n";
}

std::vector<Record> SnapshotRecords(
    const std::vector<MetricSample>& snapshot) {
  std::vector<Record> out;
  out.reserve(snapshot.size());
  for (const MetricSample& s : snapshot) {
    Record r;
    r.Set("metric", s.FullName());
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
        r.Set("kind", "counter").Set("value", s.value);
        break;
      case MetricSample::Kind::kGauge:
        r.Set("kind", "gauge").Set("value", s.value);
        break;
      case MetricSample::Kind::kHistogram:
        r.Set("kind", "histogram")
            .Set("value", s.value)  // mean
            .Set("count", s.count)
            .Set("sum", s.sum)
            .Set("p50", s.p50)
            .Set("p95", s.p95)
            .Set("p99", s.p99);
        break;
    }
    out.push_back(std::move(r));
  }
  return out;
}

void WriteSnapshotText(const std::vector<MetricSample>& snapshot,
                       std::ostream* out) {
  for (const MetricSample& s : snapshot) {
    *out << s.FullName() << "  ";
    switch (s.kind) {
      case MetricSample::Kind::kCounter:
      case MetricSample::Kind::kGauge:
        *out << FormatDouble(s.value);
        break;
      case MetricSample::Kind::kHistogram:
        *out << "count=" << s.count << " mean=" << FormatDouble(s.value)
             << " p50=" << FormatDouble(s.p50)
             << " p95=" << FormatDouble(s.p95)
             << " p99=" << FormatDouble(s.p99);
        break;
    }
    *out << '\n';
  }
}

Result<std::unique_ptr<FileRecordSink>> FileRecordSink::Open(
    const std::string& path, Format format) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!file->is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  auto sink = std::unique_ptr<FileRecordSink>(new FileRecordSink());
  switch (format) {
    case Format::kCsv:
      sink->inner_ = std::make_unique<CsvSink>(file.get());
      break;
    case Format::kJsonl:
      sink->inner_ = std::make_unique<JsonlSink>(file.get());
      break;
    case Format::kTable:
      sink->inner_ = std::make_unique<TableSink>(file.get());
      break;
  }
  sink->file_ = std::move(file);
  return sink;
}

void FileRecordSink::Flush() {
  inner_->Flush();
  file_->flush();
}

Result<std::unique_ptr<FileTraceSink>> FileTraceSink::Open(
    const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!file->is_open()) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  auto sink = std::unique_ptr<FileTraceSink>(new FileTraceSink());
  sink->inner_ = std::make_unique<JsonlTraceSink>(file.get());
  sink->file_ = std::move(file);
  return sink;
}

void FileTraceSink::Flush() {
  inner_->Flush();
  file_->flush();
}

}  // namespace prompt
