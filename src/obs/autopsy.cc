#include "obs/autopsy.h"

#include <algorithm>
#include <cmath>

#include "obs/sink.h"

namespace prompt {

std::string_view BatchCauseName(BatchCause cause) {
  switch (cause) {
    case BatchCause::kNone:
      return "none";
    case BatchCause::kQueueing:
      return "queueing";
    case BatchCause::kRecovery:
      return "recovery";
    case BatchCause::kSplitKeyOverflow:
      return "split_key_overflow";
    case BatchCause::kStragglerCore:
      return "straggler_core";
    case BatchCause::kBucketSkew:
      return "bucket_skew";
    case BatchCause::kIngestBackpressure:
      return "ingest_backpressure";
    case BatchCause::kSketchSaturated:
      return "sketch_saturated";
    case BatchCause::kCauseCount:
      break;
  }
  return "unknown";
}

BatchAutopsy ExplainBatch(const BatchReport& report,
                          const AutopsyOptions& options) {
  BatchAutopsy a;
  a.batch_id = report.batch_id;

  const PartitionMetrics& pm = report.partition_metrics;
  a.block_load_ratio =
      pm.avg_block_size > 0
          ? static_cast<double>(pm.max_block_size) / pm.avg_block_size
          : 1.0;
  a.split_key_frac = pm.distinct_keys > 0
                         ? static_cast<double>(pm.split_keys) /
                               static_cast<double>(pm.distinct_keys)
                         : 0.0;
  a.ring_occupancy = report.has_ingest ? MaxRingOccupancyFrac(report.ingest) : 0.0;

  auto set = [&a](BatchCause cause, TimeMicros excess) {
    a.excess[static_cast<size_t>(cause)] = std::max<TimeMicros>(0, excess);
  };
  set(BatchCause::kQueueing, report.queue_delay);
  set(BatchCause::kRecovery, report.recovery_time);
  set(BatchCause::kSplitKeyOverflow, report.partition_overflow);
  // Straggler excess: the share of the Map makespan a balanced plan (every
  // block at the average load) would not have spent. Needs the
  // partition-metrics pass; without it max/avg are zero and the rule is mute.
  // When the batch ran in sketch mode with collapsed head coverage, the same
  // excess is attributed to sketch saturation instead (never both): the
  // imbalance came from unsplittable tail buckets, not Alg. 2's plan, and
  // the fix is a larger sketch capacity rather than more map tasks.
  if (report.sketch.sketch_mode) {
    a.head_coverage = report.sketch.head_coverage();
  }
  if (pm.max_block_size > 0 && a.block_load_ratio > 1.0) {
    const auto imbalance_excess =
        static_cast<TimeMicros>(static_cast<double>(report.map_makespan) *
                                (1.0 - 1.0 / a.block_load_ratio));
    const bool saturated = report.sketch.sketch_mode &&
                           a.head_coverage < options.sketch_coverage_threshold;
    set(saturated ? BatchCause::kSketchSaturated : BatchCause::kStragglerCore,
        imbalance_excess);
  }
  // Bucket-skew excess: how far the slowest reduce bucket dragged past the
  // stage's mean completion — the Fig. 13 spread, in microseconds.
  set(BatchCause::kBucketSkew,
      static_cast<TimeMicros>((report.reduce_completion_max_ms -
                               report.reduce_completion_mean_ms) *
                              1000.0));
  // Ring back-pressure only counts once a ring ran near capacity: the
  // router was (or was about to start) stalling on a full SPSC ring.
  if (report.has_ingest &&
      a.ring_occupancy >= options.ring_pressure_threshold) {
    set(BatchCause::kIngestBackpressure,
        report.ingest.seal_barrier_latency + report.ingest.merge_latency);
  }

  a.threshold = std::max<TimeMicros>(
      options.min_excess_us,
      static_cast<TimeMicros>(options.min_excess_frac *
                              static_cast<double>(report.batch_interval)));
  TimeMicros best = 0;
  for (size_t c = 0; c < kBatchCauses; ++c) {
    a.total_excess += a.excess[c];
    // Strict > keeps the earliest cause on ties — the deterministic order.
    if (a.excess[c] > best) {
      best = a.excess[c];
      a.dominant = static_cast<BatchCause>(c);
    }
  }
  if (best < a.threshold) a.dominant = BatchCause::kNone;
  return a;
}

Record AutopsyRecord(const BatchAutopsy& autopsy) {
  Record r;
  r.Set("record", "autopsy")
      .Set("batch_id", autopsy.batch_id)
      .Set("dominant", std::string(BatchCauseName(autopsy.dominant)))
      .Set("total_excess_us", static_cast<int64_t>(autopsy.total_excess))
      .Set("threshold_us", static_cast<int64_t>(autopsy.threshold));
  for (size_t c = 1; c < kBatchCauses; ++c) {
    const auto cause = static_cast<BatchCause>(c);
    r.Set("excess_" + std::string(BatchCauseName(cause)) + "_us",
          static_cast<int64_t>(autopsy.excess[c]));
  }
  r.Set("block_load_ratio", autopsy.block_load_ratio)
      .Set("split_key_frac", autopsy.split_key_frac)
      .Set("ring_occupancy", autopsy.ring_occupancy)
      .Set("head_coverage", autopsy.head_coverage);
  return r;
}

void WriteAutopsyText(const BatchAutopsy& autopsy, const BatchReport& report,
                      std::ostream* out) {
  *out << "autopsy for batch " << autopsy.batch_id << ": dominant="
       << BatchCauseName(autopsy.dominant) << "  (latency "
       << static_cast<double>(report.latency) / 1000.0 << "ms over a "
       << static_cast<double>(report.batch_interval) / 1000.0
       << "ms interval, noise floor "
       << static_cast<double>(autopsy.threshold) / 1000.0 << "ms)\n";
  TableSink table(out, /*column_width=*/22);
  for (size_t c = 1; c < kBatchCauses; ++c) {
    const auto cause = static_cast<BatchCause>(c);
    Record row;
    row.Set("cause", std::string(BatchCauseName(cause)))
        .Set("excess_ms",
             static_cast<double>(autopsy.excess[c]) / 1000.0)
        .Set("dominant", cause == autopsy.dominant ? "<==" : "");
    table.Write(row);
  }
  *out << "context: block_load_ratio=" << autopsy.block_load_ratio
       << " split_key_frac=" << autopsy.split_key_frac
       << " ring_occupancy=" << autopsy.ring_occupancy
       << " head_coverage=" << autopsy.head_coverage
       << " queue_ms=" << static_cast<double>(report.queue_delay) / 1000.0
       << " recovery_ms="
       << static_cast<double>(report.recovery_time) / 1000.0 << "\n";
}

}  // namespace prompt
