#include "obs/metrics_registry.h"

#include <cmath>
#include <limits>

namespace prompt {

size_t HistogramMetric::BucketOf(double v) {
  if (!(v > 1.0)) return 0;  // also catches NaN and negatives
  const int exp = std::ilogb(v);
  // Bucket i covers (2^(i-1), 2^i]: values exactly at a power of two stay in
  // their exponent's bucket, everything above moves one up.
  size_t bucket = static_cast<size_t>(exp);
  if (v > std::ldexp(1.0, exp)) ++bucket;
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

std::array<uint64_t, HistogramMetric::kBuckets> HistogramMetric::BucketCounts()
    const {
  std::array<uint64_t, kBuckets> out{};
  for (size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double HistogramMetric::Quantile(double q) const {
  // NaN would slip past a plain range check (both comparisons are false);
  // reject it explicitly so callers get a diagnosable NaN, not an abort.
  if (std::isnan(q)) return std::numeric_limits<double>::quiet_NaN();
  PROMPT_CHECK(q >= 0.0 && q <= 1.0);
  const auto counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= rank) {
      const double lower = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
      const double upper = std::ldexp(1.0, static_cast<int>(i));
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(counts[i]);
      return lower + within * (upper - lower);
    }
    cumulative = next;
  }
  return std::ldexp(1.0, static_cast<int>(kBuckets));  // unreachable
}

std::string MetricSample::FullName() const {
  std::string out = name;
  if (!labels.empty()) {
    out += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ',';
      first = false;
      out += k;
      out += '=';
      out += v;
    }
    out += '}';
  }
  return out;
}

namespace {

std::string KeyOf(std::string_view name, const MetricLabels& labels) {
  MetricSample s;
  s.name = std::string(name);
  s.labels = labels;
  return s.FullName();
}

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      MetricLabels labels,
                                                      MetricSample::Kind kind) {
  std::string key = KeyOf(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    PROMPT_CHECK_MSG(it->second.kind == kind,
                     "metric re-registered with a different kind");
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.name = std::string(name);
  entry.labels = std::move(labels);
  switch (kind) {
    case MetricSample::Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricSample::Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricSample::Kind::kHistogram:
      entry.histogram = std::make_unique<HistogramMetric>();
      break;
  }
  return &entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     MetricLabels labels) {
  return FindOrCreate(name, std::move(labels), MetricSample::Kind::kCounter)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, MetricLabels labels) {
  return FindOrCreate(name, std::move(labels), MetricSample::Kind::kGauge)
      ->gauge.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(std::string_view name,
                                               MetricLabels labels) {
  return FindOrCreate(name, std::move(labels), MetricSample::Kind::kHistogram)
      ->histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricSample::Kind::kCounter:
        s.value = static_cast<double>(entry.counter->value());
        break;
      case MetricSample::Kind::kGauge:
        s.value = entry.gauge->value();
        break;
      case MetricSample::Kind::kHistogram:
        s.count = entry.histogram->count();
        s.sum = entry.histogram->sum();
        s.value = entry.histogram->Mean();
        s.p50 = entry.histogram->Quantile(0.50);
        s.p95 = entry.histogram->Quantile(0.95);
        s.p99 = entry.histogram->Quantile(0.99);
        break;
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already sorted by full name
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace prompt
