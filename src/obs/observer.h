// The single instrumentation interface of the engine. Everything the engine
// measures — per-batch reports, structured traces, run lifecycle — flows
// through Observer callbacks; the Observability composite (observability.h)
// is the standard implementation that fans out to a MetricsRegistry and
// pluggable sinks, and user code can attach its own Observer for custom
// collection (tests, dashboards, experiment harnesses).
#pragma once

#include <cstdint>

#include "obs/batch_report.h"
#include "obs/trace.h"

namespace prompt {

/// \brief Callbacks invoked by MicroBatchEngine on its driver thread, in
/// batch order. Implementations must not block (they sit between batches on
/// the engine loop) and must not retain the references past the call.
class Observer {
 public:
  virtual ~Observer() = default;

  /// A Run() of `num_batches` intervals is starting.
  virtual void OnRunStart(uint32_t num_batches) { (void)num_batches; }

  /// One batch finished processing. `trace` covers the batch's timeline;
  /// its depth-0 spans tile report.latency.
  virtual void OnBatchComplete(const BatchReport& report,
                               const BatchTrace& trace) {
    (void)report;
    (void)trace;
  }

  /// The Run() call is returning.
  virtual void OnRunEnd() {}
};

}  // namespace prompt
