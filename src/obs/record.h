// The one row model every report/metrics writer shares: an ordered list of
// named fields. BatchReport, metric snapshots and the bench figure tables
// all lower to Records before hitting a sink, so CSV/JSONL/table formatting
// exists exactly once (src/obs/sink.h).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace prompt {

/// \brief One named cell of a Record. Integer and floating fields keep their
/// native type so sinks can format them losslessly (CSV round-trips).
struct RecordField {
  std::string name;
  std::variant<uint64_t, int64_t, double, std::string> value;
};

/// \brief An ordered collection of named fields — one output row.
///
/// Field order is the column order; sinks derive headers from the first
/// record they see. Building a Record is allocation-light (two small strings
/// per field) and only happens on observability paths, never per tuple.
class Record {
 public:
  Record() = default;

  Record& Set(std::string_view name, uint64_t v) { return Push(name, v); }
  Record& Set(std::string_view name, int64_t v) { return Push(name, v); }
  Record& Set(std::string_view name, uint32_t v) {
    return Push(name, static_cast<uint64_t>(v));
  }
  Record& Set(std::string_view name, double v) { return Push(name, v); }
  Record& Set(std::string_view name, std::string v) {
    fields_.push_back(RecordField{std::string(name), std::move(v)});
    return *this;
  }
  Record& Set(std::string_view name, const char* v) {
    return Set(name, std::string(v));
  }
  Record& Append(RecordField field) {
    fields_.push_back(std::move(field));
    return *this;
  }

  const std::vector<RecordField>& fields() const { return fields_; }
  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }

 private:
  template <typename T>
  Record& Push(std::string_view name, T v) {
    fields_.push_back(RecordField{std::string(name), v});
    return *this;
  }

  std::vector<RecordField> fields_;
};

}  // namespace prompt
