// Per-batch structured tracing. Every batch interval produces one
// BatchTrace: a flat span list over the batch's timeline (accumulate →
// seal barrier → k-way merge → B-BPFI plan → queue → map → reduce), where
// depth-0 spans tile the end-to-end latency and deeper spans annotate what
// happened inside them. Traces are exported one JSONL record per batch
// (src/obs/sink.h) and are the before/after evidence for every perf PR.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"

namespace prompt {

/// \brief One span of a batch trace.
///
/// `start` and `duration` are on the batch's timeline, microseconds relative
/// to the batch interval's start. Depth-0 spans partition the end-to-end
/// latency (they must not overlap); spans with depth >= 1 are annotations
/// nested inside the preceding shallower span and may measure wall time
/// (e.g. the ingest seal barrier) rather than virtual time.
struct TraceSpan {
  std::string name;
  TimeMicros start = 0;
  TimeMicros duration = 0;
  uint32_t depth = 0;
};

/// \brief One batch's trace: identity, totals and the span list.
struct BatchTrace {
  uint64_t batch_id = 0;
  /// Batch interval start on the engine's timeline (virtual time).
  TimeMicros batch_start = 0;
  /// Reported end-to-end latency the depth-0 spans should account for.
  TimeMicros latency = 0;
  uint64_t num_tuples = 0;
  uint64_t num_keys = 0;
  std::vector<TraceSpan> spans;

  /// Sum of depth-0 span durations — the accounted share of `latency`.
  TimeMicros TopLevelTotal() const {
    TimeMicros total = 0;
    for (const TraceSpan& s : spans) {
      if (s.depth == 0) total += s.duration;
    }
    return total;
  }

  /// Fraction of the reported latency covered by depth-0 spans (1.0 when
  /// they tile it exactly; the integration bar is >= 0.95).
  double Coverage() const {
    if (latency <= 0) return 1.0;
    return static_cast<double>(TopLevelTotal()) / static_cast<double>(latency);
  }

  const TraceSpan* FindSpan(std::string_view name) const {
    for (const TraceSpan& s : spans) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

/// \brief Builds one BatchTrace per batch.
///
/// Two ways to record spans, freely mixed within a batch:
///  - AddSpan(): explicit placement, used by the engine to lay the virtual
///    batch timeline (interval, queueing, makespans) after the fact;
///  - StartSpan(): RAII wall-clock scopes for code whose cost is real time
///    (ingest seal/merge). Nesting of live scopes sets the span depth.
///
/// Not thread-safe; one recorder belongs to one driver thread (the engine
/// loop). Cross-thread measurements enter as already-measured durations via
/// AddSpan.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  PROMPT_DISALLOW_COPY_AND_ASSIGN(TraceRecorder);

  /// Opens the trace of a new batch; any previous batch must be ended.
  void BeginBatch(uint64_t batch_id, TimeMicros batch_start) {
    PROMPT_CHECK(!open_);
    open_ = true;
    current_ = BatchTrace{};
    current_.batch_id = batch_id;
    current_.batch_start = batch_start;
    open_scopes_ = 0;
    wall_.Restart();
  }

  bool open() const { return open_; }

  /// Records a span at an explicit position on the batch timeline.
  void AddSpan(std::string_view name, TimeMicros start, TimeMicros duration,
               uint32_t depth = 0) {
    PROMPT_CHECK(open_);
    current_.spans.push_back(
        TraceSpan{std::string(name), start, duration, depth});
  }

  /// \brief RAII wall-clock span; closes (records duration) on destruction.
  class Scope {
   public:
    Scope(Scope&& other) noexcept
        : recorder_(other.recorder_), index_(other.index_) {
      other.recorder_ = nullptr;
    }
    Scope& operator=(Scope&&) = delete;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { End(); }

    /// Closes the span early (idempotent).
    void End() {
      if (recorder_ != nullptr) {
        recorder_->EndScope(index_);
        recorder_ = nullptr;
      }
    }

   private:
    friend class TraceRecorder;
    Scope(TraceRecorder* recorder, size_t index)
        : recorder_(recorder), index_(index) {}

    TraceRecorder* recorder_;
    size_t index_;
  };

  /// Opens a wall-clock span; depth = number of currently open scopes.
  Scope StartSpan(std::string_view name) {
    PROMPT_CHECK(open_);
    const size_t index = current_.spans.size();
    current_.spans.push_back(TraceSpan{std::string(name),
                                       wall_.ElapsedMicros(), 0, open_scopes_});
    ++open_scopes_;
    return Scope(this, index);
  }

  /// Closes the batch, filling totals, and returns the finished trace. The
  /// reference stays valid until the next BeginBatch.
  const BatchTrace& EndBatch(uint64_t num_tuples, uint64_t num_keys,
                             TimeMicros latency) {
    PROMPT_CHECK(open_);
    PROMPT_CHECK_MSG(open_scopes_ == 0, "EndBatch with open trace scopes");
    current_.num_tuples = num_tuples;
    current_.num_keys = num_keys;
    current_.latency = latency;
    open_ = false;
    return current_;
  }

  /// The trace under construction (open) or most recently ended.
  const BatchTrace& current() const { return current_; }

 private:
  void EndScope(size_t index) {
    PROMPT_CHECK(open_scopes_ > 0);
    --open_scopes_;
    TraceSpan& span = current_.spans[index];
    span.duration = wall_.ElapsedMicros() - span.start;
  }

  BatchTrace current_;
  Stopwatch wall_;
  uint32_t open_scopes_ = 0;
  bool open_ = false;
};

}  // namespace prompt
