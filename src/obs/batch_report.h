// Per-batch observability record. Lives in src/obs/ (not the engine) so
// every consumer — report_io, sinks, bench figure writers, external
// Observers — shares one definition without pulling in the engine.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "model/sketch_stats.h"
#include "stats/metrics.h"

namespace prompt {

/// \brief Everything the engine reports about one processed micro-batch.
struct BatchReport {
  uint64_t batch_id = 0;
  /// Interval this batch accumulated over (varies under batch resizing).
  TimeMicros batch_interval = 0;
  uint64_t num_tuples = 0;
  uint64_t num_keys = 0;
  uint32_t map_tasks = 0;
  uint32_t reduce_tasks = 0;
  TimeMicros partition_cost = 0;      ///< measured partitioner decision time
  TimeMicros partition_overflow = 0;  ///< part exceeding the release slack
  TimeMicros map_makespan = 0;
  TimeMicros reduce_makespan = 0;
  TimeMicros processing_time = 0;  ///< overflow + map + reduce makespans
  TimeMicros queue_delay = 0;      ///< wait behind earlier batches
  TimeMicros latency = 0;          ///< end-to-end: interval + queue + proc
  double w = 0;                    ///< processing_time / batch_interval
  PartitionMetrics partition_metrics;  ///< zeros unless collection enabled
  double reduce_bucket_bsi = 0;        ///< Eqn. 3 over this batch's buckets
  /// Reduce-task completion spread within the batch (Fig. 13): mean and
  /// max-min band of completion times relative to reduce-stage start.
  double reduce_completion_mean_ms = 0;
  double reduce_completion_min_ms = 0;
  double reduce_completion_max_ms = 0;
  /// Map tasks that read their block remotely (cluster mode only).
  uint32_t remote_map_tasks = 0;

  // ---- Adaptive technique switching (src/adapt/). The engine stamps the
  // technique that partitioned this batch; -1 when the partitioner's name
  // maps to no factory type (custom partitioners).
  int32_t technique = -1;  ///< PartitionerType enum value
  /// First batch sealed by a new technique after an adaptive switch.
  bool technique_switched = false;
  int32_t switched_from = -1;  ///< previous PartitionerType; -1 otherwise

  // ---- Fault-tolerance accounting (src/fault/), zeros on healthy batches.
  /// In-window batches recomputed from replicated input this interval
  /// (includes the current batch when it was replayed after a mid-stage
  /// node loss).
  uint32_t batches_replayed = 0;
  /// Failed map-task attempts recovered by the bounded-retry policy.
  uint32_t tasks_retried = 0;
  /// Stragglers that got a speculative backup copy (first-finish wins).
  uint32_t tasks_speculated = 0;
  /// Batches below the replication target after recovery ran (0 when the
  /// top-up restored every batch to the configured factor).
  uint32_t under_replicated_batches = 0;
  /// Virtual time spent on recovery work (replays, re-execution after node
  /// loss, re-replication traffic); included in processing_time and traced
  /// as the depth-0 `recovery` span.
  TimeMicros recovery_time = 0;
  /// A node loss was detected and handled while this batch processed.
  bool recovered_from_failure = false;
  /// Replicas needed for recovery were gone (replication factor too low):
  /// exactly-once could not be preserved for at least one batch.
  bool unrecoverable = false;

  // ---- Durable block store (src/store/), zeros when no store is attached.
  /// Wall-clock cost of appending this batch to the durable log.
  TimeMicros store_append_us = 0;
  /// Serialized batch bytes appended to the durable log this interval.
  uint64_t store_bytes_appended = 0;
  /// Memory-tier copies spilled to stay under the node memory budget
  /// (the batch stays readable from disk).
  uint32_t store_spilled_copies = 0;

  /// Heavy-hitter ingest telemetry (DESIGN.md §17). `sketch.sketch_mode` is
  /// false (all fields zero) unless the batch was accumulated with
  /// key_mode = sketch; then head_coverage() / error_frac feed the
  /// kHeadCoverage / kSketchErrorFrac time-series signals and ExplainBatch's
  /// sketch-saturation rule.
  SketchBatchStats sketch;

  /// Per-shard ingest observability of this batch's batching phase.
  /// Populated (has_ingest = true) when the engine runs the sharded ingest
  /// pipeline (EngineOptions::ingest_shards > 1); default otherwise.
  IngestMetrics ingest;
  bool has_ingest = false;

  /// Order-independent hash of the batch's per-key window contribution.
  /// Computed only while the flight recorder (src/replay/) is journaling —
  /// equal hashes on every batch imply bit-identical window aggregates.
  uint64_t output_hash = 0;
};

}  // namespace prompt
