// The per-tuple (online) partitioning techniques the paper compares against
// (§2.2): Time-based, Shuffle, Hash, key-splitting PK-d [35][36], and the
// cardinality-aware cAM [25].
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/flat_map.h"
#include "core/partitioner.h"

namespace prompt {

/// \brief Shared scaffolding for techniques that place every tuple into a
/// block at arrival time. Subclasses implement ChooseBlock(); Seal()
/// finalizes fragment summaries and split flags.
class OnlinePartitionerBase : public BatchPartitioner {
 public:
  void Begin(uint32_t num_blocks, TimeMicros start, TimeMicros end) override;
  void OnTuple(const Tuple& t) override;
  PartitionedBatch Seal(uint64_t batch_id) override;

 protected:
  /// Picks the destination block for tuple t; called once per tuple.
  virtual uint32_t ChooseBlock(const Tuple& t) = 0;
  /// Hook for subclasses to reset per-batch state.
  virtual void OnBegin() {}

  uint32_t num_blocks_ = 1;
  TimeMicros batch_start_ = 0;
  TimeMicros batch_end_ = 0;
  std::vector<DataBlock> blocks_;
  uint64_t num_tuples_ = 0;
  FlatMap<char> distinct_keys_{1024};
};

/// \brief §2.2.1: block = position of the tuple's arrival time within the
/// batch interval (Spark Streaming's default block-interval batching).
/// Sensitive to variable data rates and gives no key-placement guarantees.
class TimeBasedPartitioner final : public OnlinePartitionerBase {
 public:
  const char* name() const override { return "TimeBased"; }

 protected:
  uint32_t ChooseBlock(const Tuple& t) override;
};

/// \brief §2.2.2: round-robin by arrival order. Equal block sizes, no key
/// locality (worst-case Reduce-side aggregation overhead).
class ShufflePartitioner final : public OnlinePartitionerBase {
 public:
  const char* name() const override { return "Shuffle"; }

 protected:
  uint32_t ChooseBlock(const Tuple& t) override;
  void OnBegin() override { cursor_ = 0; }

 private:
  uint64_t cursor_ = 0;
};

/// \brief §2.2.3: block = hash(key) % p (key grouping). Perfect key locality,
/// but skewed keys produce unequal block sizes.
class HashPartitioner final : public OnlinePartitionerBase {
 public:
  const char* name() const override { return "Hash"; }

 protected:
  uint32_t ChooseBlock(const Tuple& t) override;
};

/// \brief §2.2.4 key-splitting: d candidate blocks per key (d independent
/// hashes); each tuple goes to the least-loaded candidate. PK-2 [36] uses
/// d = 2, PK-5 [35] d = 5. Skewed keys split over at most d blocks while
/// sizes stay balanced.
class KeySplitPartitioner final : public OnlinePartitionerBase {
 public:
  explicit KeySplitPartitioner(uint32_t candidates)
      : candidates_(candidates),
        name_(candidates == 2 ? "PK2"
                              : (candidates == 5 ? "PK5" : "PKd")) {}

  const char* name() const override { return name_; }
  uint32_t candidates() const { return candidates_; }

 protected:
  uint32_t ChooseBlock(const Tuple& t) override;
  void OnBegin() override;

 private:
  uint32_t candidates_;
  const char* name_;
  std::vector<uint64_t> block_sizes_;
};

/// \brief cAM [25] (Katsipoulakis et al., "A holistic view of stream
/// partitioning costs"): like key-splitting, but the candidate choice
/// minimizes a combined cost of tuple-count imbalance *and* the aggregation
/// overhead of introducing the key to a block that does not yet hold it.
/// The candidate count is a workload-tuned parameter (the paper sweeps it
/// and reports the best run).
class CamPartitioner final : public OnlinePartitionerBase {
 public:
  explicit CamPartitioner(uint32_t candidates = 4) : candidates_(candidates) {}

  const char* name() const override { return "cAM"; }
  uint32_t candidates() const { return candidates_; }

 protected:
  uint32_t ChooseBlock(const Tuple& t) override;
  void OnBegin() override;

 private:
  uint32_t candidates_;
  std::vector<uint64_t> block_sizes_;
  std::vector<uint64_t> block_cardinalities_;
  // presence[b] answers "does block b already hold key k".
  std::vector<FlatMap<char>> presence_;
};

}  // namespace prompt
