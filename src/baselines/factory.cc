#include "baselines/factory.h"

#include "baselines/bpfi_baselines.h"
#include "baselines/online_partitioners.h"
#include "baselines/sketch_partitioner.h"

namespace prompt {

std::unique_ptr<BatchPartitioner> CreatePartitioner(
    PartitionerType type, const PartitionerConfig& config) {
  switch (type) {
    case PartitionerType::kTimeBased:
      return std::make_unique<TimeBasedPartitioner>();
    case PartitionerType::kShuffle:
      return std::make_unique<ShufflePartitioner>();
    case PartitionerType::kHash:
      return std::make_unique<HashPartitioner>();
    case PartitionerType::kPk2:
      return std::make_unique<KeySplitPartitioner>(2);
    case PartitionerType::kPk5:
      return std::make_unique<KeySplitPartitioner>(5);
    case PartitionerType::kCam:
      return std::make_unique<CamPartitioner>(config.cam_candidates);
    case PartitionerType::kPrompt:
      return std::make_unique<PromptPartitioner>(config.prompt);
    case PartitionerType::kPromptPostSort: {
      PromptPartitionerOptions opts = config.prompt;
      opts.post_sort = true;
      return std::make_unique<PromptPartitioner>(opts);
    }
    case PartitionerType::kFfd:
      return std::make_unique<BpfiBaselinePartitioner>(
          BpfiBaselinePartitioner::Kind::kFfd, config.prompt.accumulator,
          config.prompt.accumulator_kind);
    case PartitionerType::kFragMin:
      return std::make_unique<BpfiBaselinePartitioner>(
          BpfiBaselinePartitioner::Kind::kFragMin, config.prompt.accumulator,
          config.prompt.accumulator_kind);
    case PartitionerType::kSketch: {
      SketchPartitionerOptions opts;
      opts.sketch_capacity = config.sketch_capacity;
      return std::make_unique<SketchPartitioner>(opts);
    }
  }
  return nullptr;
}

Result<PartitionerType> PartitionerTypeFromName(const std::string& name) {
  if (name == "TimeBased" || name == "Time") return PartitionerType::kTimeBased;
  if (name == "Shuffle") return PartitionerType::kShuffle;
  if (name == "Hash" || name == "Hashing") return PartitionerType::kHash;
  if (name == "PK2") return PartitionerType::kPk2;
  if (name == "PK5") return PartitionerType::kPk5;
  if (name == "cAM" || name == "CAM") return PartitionerType::kCam;
  if (name == "Prompt") return PartitionerType::kPrompt;
  if (name == "Prompt+PostSort" || name == "PostSort") {
    return PartitionerType::kPromptPostSort;
  }
  if (name == "FFD") return PartitionerType::kFfd;
  if (name == "FragMin") return PartitionerType::kFragMin;
  if (name == "SketchHH" || name == "Sketch") return PartitionerType::kSketch;
  return Status::Invalid("unknown partitioner name: " + name);
}

std::vector<PartitionerType> EvaluationTechniques() {
  return {PartitionerType::kTimeBased, PartitionerType::kShuffle,
          PartitionerType::kHash,      PartitionerType::kPk2,
          PartitionerType::kPk5,       PartitionerType::kCam,
          PartitionerType::kPrompt};
}

const char* PartitionerTypeName(PartitionerType type) {
  switch (type) {
    case PartitionerType::kTimeBased: return "TimeBased";
    case PartitionerType::kShuffle: return "Shuffle";
    case PartitionerType::kHash: return "Hash";
    case PartitionerType::kPk2: return "PK2";
    case PartitionerType::kPk5: return "PK5";
    case PartitionerType::kCam: return "cAM";
    case PartitionerType::kPrompt: return "Prompt";
    case PartitionerType::kPromptPostSort: return "Prompt+PostSort";
    case PartitionerType::kFfd: return "FFD";
    case PartitionerType::kFragMin: return "FragMin";
    case PartitionerType::kSketch: return "SketchHH";
  }
  return "?";
}

}  // namespace prompt
