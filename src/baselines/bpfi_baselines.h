// Classical bin-packing heuristics adapted to B-BPFI, used in the paper's
// Fig. 6 trade-off discussion: First-Fit-Decreasing [33] and the
// fragmentation-minimization strategy of [24]/[29]. Both run on the sealed
// quasi-sorted batch like Prompt, so the three plans are directly comparable.
#pragma once

#include <memory>

#include "core/accumulator_api.h"
#include "core/prompt_partitioner.h"

namespace prompt {

/// \brief First-Fit-Decreasing with fragmentation: each key goes to the
/// first block with room; a key that fits nowhere entirely is split across
/// blocks in order. Packs tightly but fragments many keys and ignores
/// cardinality balance (Fig. 6a).
PartitionPlan BuildFfdPlan(const AccumulatedBatch& batch, uint32_t num_blocks);

/// \brief Fragmentation minimization (Next-Fit-Decreasing style): blocks are
/// filled one at a time to capacity, splitting only the key that straddles a
/// block boundary — at most num_blocks - 1 fragmented keys, but cardinality
/// is heavily imbalanced because small keys pile into the last blocks
/// (Fig. 6b).
PartitionPlan BuildFragMinPlan(const AccumulatedBatch& batch,
                               uint32_t num_blocks);

/// \brief BatchPartitioner adapters so the Fig. 6 baselines can run in the
/// full pipeline (they share Prompt's Alg. 1 buffering, differing only in
/// the seal-time plan).
class BpfiBaselinePartitioner final : public BatchPartitioner {
 public:
  enum class Kind { kFfd, kFragMin };

  explicit BpfiBaselinePartitioner(
      Kind kind, AccumulatorOptions options = {},
      AccumulatorKind accumulator_kind = AccumulatorKind::kFlat)
      : kind_(kind), accumulator_(MakeAccumulator(accumulator_kind, options)) {}

  const char* name() const override {
    return kind_ == Kind::kFfd ? "FFD" : "FragMin";
  }

  void Begin(uint32_t num_blocks, TimeMicros start, TimeMicros end) override {
    num_blocks_ = num_blocks;
    batch_end_ = end;
    accumulator_->Begin(start, end);
  }
  void OnTuple(const Tuple& t) override { accumulator_->OnTuple(t); }
  PartitionedBatch Seal(uint64_t batch_id) override;

 private:
  Kind kind_;
  std::unique_ptr<Accumulator> accumulator_;
  uint32_t num_blocks_ = 1;
  TimeMicros batch_end_ = 0;
};

}  // namespace prompt
