#include "baselines/sketch_partitioner.h"

#include "common/hash.h"

namespace prompt {

void SketchPartitioner::Begin(uint32_t num_blocks, TimeMicros /*start*/,
                              TimeMicros end) {
  PROMPT_CHECK(num_blocks >= 1);
  num_blocks_ = num_blocks;
  batch_end_ = end;
  buffer_.clear();
  sketch_.Clear();
}

void SketchPartitioner::OnTuple(const Tuple& t) {
  buffer_.push_back(t);
  sketch_.Add(t.key);
}

PartitionedBatch SketchPartitioner::Seal(uint64_t batch_id) {
  Stopwatch watch;
  PartitionedBatch out;
  out.batch_id = batch_id;
  out.seal_time = batch_end_;
  out.num_tuples = buffer_.size();
  out.blocks.reserve(num_blocks_);
  for (uint32_t b = 0; b < num_blocks_; ++b) out.blocks.emplace_back(b);

  // Heavy = estimated share above 1 / (heavy_fraction * blocks): such keys
  // would overflow a block on their own, so they round-robin. A single block
  // can't split anything — skip detection entirely rather than let the
  // degenerate threshold (total / heavy_fraction) label keys "heavy" with
  // nowhere to spread them.
  FlatMap<uint32_t> heavy_cursor(sketch_.capacity());
  if (num_blocks_ > 1) {
    const double threshold =
        static_cast<double>(sketch_.total()) /
        (options_.heavy_fraction * static_cast<double>(num_blocks_));
    for (const auto& e : sketch_.TopEntries()) {
      if (static_cast<double>(e.count) > threshold) {
        // Resume the round-robin where the previous batch stopped: seeding
        // from the key hash every batch would land each heavy key's first
        // (largest) fragment on the same block batch after batch,
        // concentrating load on the hash-favored blocks across the run.
        uint32_t* prev = cursor_.Find(e.key);
        heavy_cursor.GetOrInsert(e.key) =
            prev != nullptr ? *prev % num_blocks_
                            : HashKey(e.key) % num_blocks_;
      }
    }
  }

  FlatMap<char> distinct(buffer_.size() / 4 + 16);
  for (const Tuple& t : buffer_) {
    distinct.GetOrInsert(t.key);
    uint32_t* cursor = heavy_cursor.Find(t.key);
    uint32_t block;
    if (cursor != nullptr) {
      block = *cursor;
      *cursor = (*cursor + 1) % num_blocks_;  // spread the heavy key
    } else {
      block = static_cast<uint32_t>(HashKey(t.key) % num_blocks_);
    }
    out.blocks[block].Append(t);
  }
  out.num_keys = distinct.size();
  // Carry the advanced cursors into the next batch; replacing the map also
  // drops keys that stopped being heavy, so it stays bounded by the sketch
  // capacity instead of accreting every heavy key the run ever saw.
  cursor_ = std::move(heavy_cursor);
  for (DataBlock& b : out.blocks) b.Finalize();
  out.ComputeSplitFlags();
  out.partition_cost = watch.ElapsedMicros();
  return out;
}

}  // namespace prompt
