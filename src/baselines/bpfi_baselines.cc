#include "baselines/bpfi_baselines.h"

#include <algorithm>

#include "common/flat_map.h"

namespace prompt {

namespace {

void FinalizePlanStats(PartitionPlan* plan, uint64_t num_keys) {
  FlatMap<uint32_t> blocks_of_key(num_keys + 8);
  for (const auto& block : plan->blocks) {
    FlatMap<char> seen(block.size() + 8);
    for (const PlanPlacement& pl : block) {
      bool inserted = false;
      seen.GetOrInsert(pl.key_index, &inserted);
      if (inserted) {
        ++plan->fragments;
        ++blocks_of_key.GetOrInsert(pl.key_index);
      }
    }
  }
  blocks_of_key.ForEach([plan](KeyId, uint32_t n) {
    if (n > 1) ++plan->split_keys;
  });
}

}  // namespace

PartitionPlan BuildFfdPlan(const AccumulatedBatch& batch,
                           uint32_t num_blocks) {
  PartitionPlan plan;
  plan.blocks.resize(num_blocks);
  const auto& keys = batch.keys();
  if (keys.empty()) return plan;
  const uint64_t capacity =
      (batch.num_tuples() + num_blocks - 1) / num_blocks;

  std::vector<uint64_t> sizes(num_blocks, 0);
  for (uint32_t i = 0; i < keys.size(); ++i) {
    uint64_t remaining = keys[i].count;
    uint64_t skip = 0;
    // First fit: earliest block with room for the whole key.
    bool placed = false;
    for (uint32_t b = 0; b < num_blocks && !placed; ++b) {
      if (sizes[b] + remaining <= capacity) {
        plan.blocks[b].push_back(PlanPlacement{i, skip, remaining});
        sizes[b] += remaining;
        placed = true;
      }
    }
    if (placed) continue;
    // No block holds it entirely: fragment greedily across blocks in order.
    for (uint32_t b = 0; b < num_blocks && remaining > 0; ++b) {
      uint64_t room = sizes[b] < capacity ? capacity - sizes[b] : 0;
      if (room == 0) continue;
      uint64_t take = std::min(room, remaining);
      plan.blocks[b].push_back(PlanPlacement{i, skip, take});
      sizes[b] += take;
      skip += take;
      remaining -= take;
    }
    if (remaining > 0) {
      // Rounding tail: dump on the smallest block.
      uint32_t smallest = static_cast<uint32_t>(
          std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
      plan.blocks[smallest].push_back(PlanPlacement{i, skip, remaining});
      sizes[smallest] += remaining;
    }
  }
  FinalizePlanStats(&plan, keys.size());
  return plan;
}

PartitionPlan BuildFragMinPlan(const AccumulatedBatch& batch,
                               uint32_t num_blocks) {
  PartitionPlan plan;
  plan.blocks.resize(num_blocks);
  const auto& keys = batch.keys();
  if (keys.empty()) return plan;
  const uint64_t capacity =
      (batch.num_tuples() + num_blocks - 1) / num_blocks;

  uint32_t b = 0;
  uint64_t used = 0;
  for (uint32_t i = 0; i < keys.size(); ++i) {
    uint64_t remaining = keys[i].count;
    uint64_t skip = 0;
    while (remaining > 0) {
      if (used >= capacity && b + 1 < num_blocks) {
        ++b;
        used = 0;
      }
      uint64_t room = b + 1 < num_blocks
                          ? (used < capacity ? capacity - used : 0)
                          : remaining;  // last block absorbs the tail
      uint64_t take = std::min(std::max<uint64_t>(room, 1), remaining);
      plan.blocks[b].push_back(PlanPlacement{i, skip, take});
      used += take;
      skip += take;
      remaining -= take;
    }
  }
  FinalizePlanStats(&plan, keys.size());
  return plan;
}

PartitionedBatch BpfiBaselinePartitioner::Seal(uint64_t batch_id) {
  Stopwatch watch;
  AccumulatedBatch sealed = accumulator_->Seal();
  PartitionPlan plan = kind_ == Kind::kFfd
                           ? BuildFfdPlan(sealed, num_blocks_)
                           : BuildFragMinPlan(sealed, num_blocks_);
  const TimeMicros cost = watch.ElapsedMicros();
  PartitionedBatch out = MaterializePlan(sealed, plan, num_blocks_);
  out.batch_id = batch_id;
  out.seal_time = batch_end_;
  out.partition_cost = cost;
  return out;
}

}  // namespace prompt
