#include "baselines/online_partitioners.h"

#include <algorithm>

#include "common/hash.h"

namespace prompt {

void OnlinePartitionerBase::Begin(uint32_t num_blocks, TimeMicros start,
                                  TimeMicros end) {
  PROMPT_CHECK(num_blocks >= 1);
  PROMPT_CHECK(end > start);
  num_blocks_ = num_blocks;
  batch_start_ = start;
  batch_end_ = end;
  num_tuples_ = 0;
  blocks_.clear();
  blocks_.reserve(num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) blocks_.emplace_back(b);
  distinct_keys_.Clear();
  OnBegin();
}

void OnlinePartitionerBase::OnTuple(const Tuple& t) {
  ++num_tuples_;
  distinct_keys_.GetOrInsert(t.key);
  uint32_t b = ChooseBlock(t);
  PROMPT_CHECK(b < num_blocks_);
  blocks_[b].Append(t);
}

PartitionedBatch OnlinePartitionerBase::Seal(uint64_t batch_id) {
  PartitionedBatch out;
  out.batch_id = batch_id;
  out.seal_time = batch_end_;
  out.num_tuples = num_tuples_;
  out.num_keys = distinct_keys_.size();
  out.blocks = std::move(blocks_);
  blocks_.clear();
  for (DataBlock& b : out.blocks) b.Finalize();
  out.ComputeSplitFlags();
  // Online techniques amortize their decision per tuple; there is no
  // seal-time partitioning step, so the batching-phase cost is ~0.
  out.partition_cost = 0;
  return out;
}

uint32_t TimeBasedPartitioner::ChooseBlock(const Tuple& t) {
  const TimeMicros span = batch_end_ - batch_start_;
  TimeMicros offset = std::clamp<TimeMicros>(t.ts - batch_start_, 0, span - 1);
  return static_cast<uint32_t>(
      (static_cast<__int128>(offset) * num_blocks_) / span);
}

uint32_t ShufflePartitioner::ChooseBlock(const Tuple&) {
  return static_cast<uint32_t>(cursor_++ % num_blocks_);
}

uint32_t HashPartitioner::ChooseBlock(const Tuple& t) {
  return static_cast<uint32_t>(HashKey(t.key) % num_blocks_);
}

void KeySplitPartitioner::OnBegin() {
  block_sizes_.assign(num_blocks_, 0);
}

uint32_t KeySplitPartitioner::ChooseBlock(const Tuple& t) {
  // d-choices: the tuple goes to the least-loaded of its candidate blocks.
  uint32_t best = 0;
  uint64_t best_size = UINT64_MAX;
  const uint32_t d = std::min(candidates_, num_blocks_);
  for (uint32_t c = 0; c < d; ++c) {
    uint32_t b = static_cast<uint32_t>(HashKey(t.key, c + 1) % num_blocks_);
    if (block_sizes_[b] < best_size) {
      best_size = block_sizes_[b];
      best = b;
    }
  }
  ++block_sizes_[best];
  return best;
}

void CamPartitioner::OnBegin() {
  block_sizes_.assign(num_blocks_, 0);
  block_cardinalities_.assign(num_blocks_, 0);
  presence_.clear();
  for (uint32_t b = 0; b < num_blocks_; ++b) presence_.emplace_back(256);
}

uint32_t CamPartitioner::ChooseBlock(const Tuple& t) {
  // Combined cost per candidate: its current tuple load plus, when the key
  // would be new to the block, the expected per-key aggregation surcharge
  // (estimated as the running average tuples-per-key). Minimizing this
  // trades size imbalance against cardinality imbalance, per [25].
  const uint32_t d = std::min(candidates_, num_blocks_);
  const double avg_cluster =
      distinct_keys_.size() > 0
          ? static_cast<double>(num_tuples_) /
                static_cast<double>(distinct_keys_.size())
          : 1.0;
  uint32_t best = 0;
  double best_cost = 1e300;
  for (uint32_t c = 0; c < d; ++c) {
    uint32_t b = static_cast<uint32_t>(HashKey(t.key, c + 101) % num_blocks_);
    const bool present = presence_[b].Contains(t.key);
    double cost = static_cast<double>(block_sizes_[b]) +
                  (present ? 0.0 : avg_cluster);
    if (cost < best_cost) {
      best_cost = cost;
      best = b;
    }
  }
  ++block_sizes_[best];
  bool inserted = false;
  presence_[best].GetOrInsert(t.key, &inserted);
  if (inserted) ++block_cardinalities_[best];
  return best;
}

}  // namespace prompt
