// Factory over every partitioning technique compared in the paper, keyed by
// the names used in its figures.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/partitioner.h"
#include "core/prompt_partitioner.h"

namespace prompt {

/// \brief All batching-phase techniques available to experiments.
enum class PartitionerType {
  kTimeBased,
  kShuffle,
  kHash,
  kPk2,
  kPk5,
  kCam,
  kPrompt,
  kPromptPostSort,
  kFfd,
  kFragMin,
  kSketch,
};

/// \brief Construction parameters shared by the factory.
struct PartitionerConfig {
  PromptPartitionerOptions prompt;
  /// Candidate count for cAM (the paper sweeps this per workload and keeps
  /// the best; bench harnesses do the same sweep).
  uint32_t cam_candidates = 4;
  /// Counter budget for the sketch-driven baseline.
  size_t sketch_capacity = 256;
};

/// \brief Creates a partitioner instance of the given type.
std::unique_ptr<BatchPartitioner> CreatePartitioner(
    PartitionerType type, const PartitionerConfig& config = {});

/// \brief Parses a figure-style name ("Prompt", "PK2", "cAM", ...).
Result<PartitionerType> PartitionerTypeFromName(const std::string& name);

/// \brief The comparison set of the paper's evaluation figures.
std::vector<PartitionerType> EvaluationTechniques();

const char* PartitionerTypeName(PartitionerType type);

}  // namespace prompt
