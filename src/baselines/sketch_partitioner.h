// Sketch-driven partitioner: what a bounded-memory, tuple-at-a-time system
// (e.g. Gedik's lossy-counting partitioning functions [18]) would do in the
// micro-batch setting — detect heavy hitters with a Space-Saving sketch and
// split only those, hashing everything else. The ablation counterpart to
// Prompt's thesis that exact per-batch statistics are affordable and pay off
// (§2.2.4).
#pragma once

#include <vector>

#include "common/flat_map.h"
#include "core/partitioner.h"
#include "stats/space_saving.h"

namespace prompt {

/// \brief Options for the sketch-driven baseline.
struct SketchPartitionerOptions {
  /// Counters kept by the Space-Saving sketch.
  size_t sketch_capacity = 256;
  /// A key whose estimated share exceeds 1/(heavy_fraction * blocks) of the
  /// batch is treated as heavy and split round-robin.
  double heavy_fraction = 2.0;
};

/// \brief Buffers the batch, tracks frequencies approximately, and at seal
/// time splits only the sketch's heavy hitters (hash for the rest).
class SketchPartitioner final : public BatchPartitioner {
 public:
  explicit SketchPartitioner(SketchPartitionerOptions options = {})
      : options_(options), sketch_(options.sketch_capacity) {}

  const char* name() const override { return "SketchHH"; }

  void Begin(uint32_t num_blocks, TimeMicros start, TimeMicros end) override;
  void OnTuple(const Tuple& t) override;
  PartitionedBatch Seal(uint64_t batch_id) override;

  const SpaceSaving& sketch() const { return sketch_; }

 private:
  SketchPartitionerOptions options_;
  SpaceSaving sketch_;
  std::vector<Tuple> buffer_;
  /// Round-robin positions of the previous batch's heavy keys — persisted
  /// across batches so a stable heavy key keeps rotating instead of dropping
  /// its first fragment on the same hash-chosen block every batch.
  FlatMap<uint32_t> cursor_{16};
  uint32_t num_blocks_ = 1;
  TimeMicros batch_end_ = 0;
};

}  // namespace prompt
