// Multi-tenant query serving: N QueryContexts multiplexed over one shared
// ingest pipeline by a weighted-fair TenantScheduler.
//
// Each heartbeat:
//   1. the scheduler hands every tenant its deterministic slot share
//      (weights only — a tenant's overflow queues behind its *own* slots);
//   2. the shared source drains once; tuples fan out to each tenant whose
//      KeyFilter matches (sharded ingest merges once, then each tenant
//      replays its slice of the merged quasi-sorted runs);
//   3. every tenant seals and processes its own batch on its granted slots,
//      with its own window, technique/adaptive-ladder state, autopsy stream
//      and tenant-labeled metrics.
// Virtual time is per tenant (QueryContext::pipeline_free_at), so a noisy
// neighbor's queueing never shows up in a calm tenant's latency — the
// isolation property bench/multi_tenant_isolation asserts.
//
// Not in this engine (single-tenant only for now): cluster mode / fault
// injection, elasticity, batch resizing, report-row sinks. The shared
// substrate here is the ingest pipeline and the slot pool.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/engine.h"
#include "ingest/pipeline.h"
#include "obs/autopsy.h"
#include "obs/observability.h"
#include "query/multi_query.h"
#include "replay/journal.h"
#include "tenant/query_context.h"
#include "tenant/tenant_scheduler.h"
#include "workload/source.h"

namespace prompt {

class ThreadPool;

/// \brief Shared-substrate configuration. Per-query knobs (technique,
/// adaptive ladder, weight, filter, window) come from each TenantQuerySpec.
struct MultiTenantEngineOptions {
  /// Heartbeat period — the shared slide every tenant's window rides
  /// (ParseQueryFile rejects specs whose SLIDEs differ).
  TimeMicros batch_interval = Seconds(1);
  /// Task-slot pool the scheduler divides each heartbeat (the cluster's
  /// cores). Must be >= the number of tenants.
  uint32_t total_slots = 16;
  /// Per-tenant Map parallelism (data blocks per batch) and Reduce buckets.
  uint32_t map_tasks = 8;
  uint32_t reduce_tasks = 8;
  CostModelParams cost;
  ExecutionMode mode = ExecutionMode::kSimulated;
  /// Alg. 3 Worst-Fit Reduce allocation for every tenant (vs hashing).
  bool use_prompt_reduce = true;
  /// Early Batch Release slack as a fraction of the interval (§4.2).
  double early_release_frac = 0.05;
  /// Per-tenant instability bound on queueing delay, in intervals.
  double unstable_queue_intervals = 8.0;
  /// Shared ingest pipeline configuration. ingest.shards = 1 routes tuples
  /// straight into each matching tenant's partitioner; > 1 accumulates once
  /// (Alg. 1 sharded) and each tenant replays its filtered slice of the
  /// merge.
  IngestOptions ingest;
  /// Shared observability stack. Autopsy rows carry a `tenant` column; the
  /// exporter serves per-tenant stores at /timeseries.json?tenant=<id>.
  ObservabilityOptions obs;
  /// Template for adaptive tenants: thresholds, window and partitioner
  /// config come from here; enabled/d/candidates come from each spec.
  AdaptiveOptions adapt_base;
  /// Durable block store shared by every tenant (src/store/): batch ids are
  /// namespaced by tenant index, each tenant's sealed batch is logged
  /// before processing, and Create() recovers every tenant's surviving
  /// in-window batches from the same directory.
  StoreOptions store;
  /// Flight recorder (src/replay/): when journal.dir is set, every tuple,
  /// sealed-batch boundary, per-tenant outcome fingerprint, adaptive switch
  /// and wall-clock input is journaled; outcome records are namespaced by
  /// tenant index, mirroring the durable store's owner namespace.
  JournalOptions journal;
};

/// \brief One tenant's results for a Run call.
struct TenantRunResult {
  std::string id;
  RunSummary summary;
  /// Slots granted to this tenant over the run's heartbeats.
  uint64_t slots_granted = 0;
  /// Dominant autopsy verdict of each batch, in batch order (the per-tenant
  /// autopsy stream in summary form; the JSONL rows carry the full detail).
  std::vector<BatchCause> causes;
  /// causes[] histogram, indexed by BatchCause.
  std::array<uint64_t, kBatchCauses> cause_counts{};
};

/// \brief All tenants' results for a Run call, tenant-indexed.
struct MultiTenantRunSummary {
  std::vector<TenantRunResult> tenants;
};

/// \brief The multi-tenant serving engine.
class MultiTenantEngine {
 public:
  /// \param source not owned; must outlive the engine. Invalid when specs is
  /// empty, ids collide, or the slot pool cannot cover one slot per tenant.
  static Result<std::unique_ptr<MultiTenantEngine>> Create(
      MultiTenantEngineOptions options, std::vector<TenantQuerySpec> specs,
      TupleSource* source);
  ~MultiTenantEngine();
  PROMPT_DISALLOW_COPY_AND_ASSIGN(MultiTenantEngine);

  /// Runs `num_batches` heartbeats. Callable repeatedly; per-tenant state
  /// (windows, virtual clocks, adaptive rungs) carries over, results cover
  /// this call's batches only.
  MultiTenantRunSummary Run(uint32_t num_batches);

  size_t tenants() const { return tenants_.size(); }
  const std::string& id(size_t tenant) const;
  /// The tenant's complete per-query state (window, technique, clocks).
  const QueryContext& context(size_t tenant) const;
  const WindowState& window(size_t tenant) const;

  const TenantScheduler& scheduler() const { return *scheduler_; }
  Observability* observability() { return obs_.get(); }
  const Observability* observability() const { return obs_.get(); }
  const MultiTenantEngineOptions& options() const { return options_; }

  /// What Create() recovered from the shared store directory.
  struct DurableRecovery {
    uint64_t batches_recovered = 0;  ///< across all tenants
    uint64_t torn_records = 0;
    /// Torn tail or undecodable record: at least one logged batch did not
    /// survive (reported, never fabricated).
    bool data_loss = false;
  };
  const DurableRecovery& durable_recovery() const { return durable_recovery_; }
  const DurableBlockStore* durable_store() const { return durable_.get(); }
  /// The flight recorder, or null when options.journal is disabled.
  const JournalWriter* journal() const { return journal_.get(); }

 private:
  struct Tenant {
    TenantQuerySpec spec;
    std::unique_ptr<QueryContext> ctx;
    // Tenant-labeled instrumentation (null when metrics are disabled).
    Counter* batches_total = nullptr;
    Counter* tuples_total = nullptr;
    HistogramMetric* latency_us = nullptr;
    Gauge* slots_gauge = nullptr;
    Gauge* w_gauge = nullptr;
  };

  MultiTenantEngine(MultiTenantEngineOptions options, TupleSource* source);

  /// The lean per-tenant processing phase: overflow accounting, partition
  /// metrics, Map/Reduce execution on `slots` cores, window update.
  BatchReport ProcessTenantBatch(Tenant* tenant, PartitionedBatch batch,
                                 TimeMicros interval, uint32_t slots);

  MultiTenantEngineOptions options_;
  TupleSource* source_;
  std::unique_ptr<Observability> obs_;
  std::unique_ptr<TenantScheduler> scheduler_;
  std::unique_ptr<ParallelIngestPipeline> ingest_;  // ingest.shards > 1
  std::unique_ptr<ThreadPool> pool_;                // mode == kReal
  std::unique_ptr<DurableBlockStore> durable_;      // store.dir non-empty
  std::unique_ptr<JournalWriter> journal_;          // journal.dir non-empty
  DurableRecovery durable_recovery_;
  std::vector<Tenant> tenants_;

  TimeMicros next_batch_start_ = 0;
  bool have_pending_ = false;
  Tuple pending_{};  ///< one-tuple lookahead across batch boundaries

  // Shared-ingest EWMA estimates (merged totals across all tenants).
  double est_tuples_ = 0;
  double est_keys_ = 0;
  bool est_init_ = false;
};

}  // namespace prompt
