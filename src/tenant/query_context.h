// QueryContext: the per-query mutable state that used to live flat inside
// MicroBatchEngine — the live partitioner, the window, the per-query
// controllers (elasticity, batch resizing, adaptive switching), the EWMA
// workload estimates feeding Alg. 1, and the replication bookkeeping. One
// engine run owns one context in the single-tenant path (zero behavior
// change); the multi-tenant scheduler (src/tenant/tenant_scheduler.h)
// multiplexes N of them over one shared ingest pipeline.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "adapt/adaptive_controller.h"
#include "core/elastic_controller.h"
#include "core/partitioner.h"
#include "core/reduce_allocator.h"
#include "engine/batch_resizer.h"
#include "engine/execution.h"
#include "engine/job.h"
#include "engine/window.h"
#include "obs/batch_report.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"

namespace prompt {

/// \brief The per-query slice of EngineOptions: everything a QueryContext
/// needs to build and drive its own pipeline stages. The engine (or the
/// multi-tenant scheduler) fills this from its own options; shared-substrate
/// settings (cores, ingest shards, cluster, faults) stay with the caller.
struct QueryContextOptions {
  uint32_t map_tasks = 8;
  uint32_t reduce_tasks = 8;
  CostModelParams cost;
  ExecutionMode mode = ExecutionMode::kSimulated;
  /// Alg. 3 Worst-Fit Reduce allocation (true) vs conventional hashing.
  bool use_prompt_reduce = true;
  bool elasticity_enabled = false;
  ElasticityOptions elasticity;
  bool batch_resizing_enabled = false;
  BatchResizerOptions batch_resizer;
  /// Drift-aware adaptive technique switching (src/adapt/).
  AdaptiveOptions adapt;
};

/// \brief One streaming query's complete mutable state.
///
/// The context is a state bag driven by an engine, not an engine itself: the
/// run loop (MicroBatchEngine::Run or TenantScheduler's heartbeat) decides
/// when to Begin/Seal the partitioner, execute stages and feed the
/// controllers; the context owns the objects and the cross-batch bookkeeping
/// so N queries can coexist without sharing any of it.
class QueryContext {
 public:
  /// \param registry nullptr disables component metrics; `labels` is
  /// appended to every metric the context's components register (the
  /// multi-tenant path passes {{"tenant", id}}).
  QueryContext(std::string id, const QueryContextOptions& options, JobSpec job,
               std::unique_ptr<BatchPartitioner> partitioner,
               MetricsRegistry* registry, MetricLabels labels = {});
  PROMPT_DISALLOW_COPY_AND_ASSIGN(QueryContext);

  const std::string& id() const { return id_; }
  const QueryContextOptions& options() const { return options_; }
  const MetricLabels& labels() const { return labels_; }

  /// Steps the EWMA workload estimates (Alg. 1's N_est / K_avg feed,
  /// alpha = 0.4) with one completed batch and forwards them to the live
  /// partitioner. Callers sharing an ingest pipeline read est_tuples /
  /// est_keys afterwards to feed it too.
  void ObserveBatchEstimates(uint64_t tuples, uint64_t keys);

  /// Swaps the live partitioner for `decision.to` between heartbeats: the
  /// outgoing technique sealed the batch that just completed, the incoming
  /// one begins the next batch, so no in-flight batch mixes techniques. The
  /// new instance is warm-started from the EWMA estimates.
  void ApplyTechniqueSwitch(const AdaptiveDecision& decision);

  /// Stamps the live technique into the report, plus the switch annotation
  /// when ApplyTechniqueSwitch ran since the previous batch.
  void MarkTechnique(BatchReport* report);

  // ---- Owned per-query components. Public: the engines drive these
  // directly, exactly as they drove the flat members before the extraction.
  JobSpec job;
  std::unique_ptr<BatchPartitioner> partitioner;
  std::unique_ptr<ReduceAllocator> allocator;
  std::unique_ptr<BatchExecutor> executor;
  std::unique_ptr<WindowState> window;
  std::unique_ptr<ElasticController> elastic;        ///< elasticity_enabled
  std::unique_ptr<BatchIntervalController> resizer;  ///< batch_resizing_enabled
  std::unique_ptr<AdaptivePartitionController> adapt;  ///< adapt.enabled
  /// Per-tenant telemetry ring; created by the multi-tenant engine (the
  /// single-tenant path keeps using the global Observability store).
  std::unique_ptr<TimeSeriesStore> timeseries;

  // ---- Cross-batch scalar state.
  uint32_t map_tasks;
  uint32_t reduce_tasks;
  /// PartitionerType of the live partitioner (-1 when its name maps to no
  /// factory type); stamped into every BatchReport.
  int32_t current_technique = -1;
  bool pending_switch_mark = false;
  int32_t switched_from = -1;
  uint64_t next_batch_id = 0;
  /// When this query's processing pipeline frees (virtual time). Per-query:
  /// under the weighted-fair scheduler one tenant's overflow queues behind
  /// its own slots, never another tenant's.
  TimeMicros pipeline_free_at = 0;

  // EWMA estimates feeding Alg. 1's N_est and K_avg.
  double est_tuples = 0;
  double est_keys = 0;
  bool est_init = false;

  // Replica of the last batch's input + output for recovery verification.
  std::unique_ptr<PartitionedBatch> last_replica;
  std::vector<KV> last_output;

  /// Which alive node hosts each in-window batch's reduce-bucket state,
  /// oldest first, mirroring the window's retained history.
  struct WindowReplica {
    uint64_t batch_id;
    uint32_t node;
  };
  std::deque<WindowReplica> window_state_nodes;

 private:
  std::string id_;
  QueryContextOptions options_;
  MetricLabels labels_;
};

}  // namespace prompt
