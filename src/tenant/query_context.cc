#include "tenant/query_context.h"

#include <algorithm>

#include "baselines/factory.h"
#include "common/logging.h"

namespace prompt {

QueryContext::QueryContext(std::string id, const QueryContextOptions& options,
                           JobSpec job_spec,
                           std::unique_ptr<BatchPartitioner> p,
                           MetricsRegistry* registry, MetricLabels labels)
    : job(std::move(job_spec)),
      partitioner(std::move(p)),
      map_tasks(options.map_tasks),
      reduce_tasks(options.reduce_tasks),
      id_(std::move(id)),
      options_(options),
      labels_(std::move(labels)) {
  PROMPT_CHECK(partitioner != nullptr);
  if (options_.use_prompt_reduce) {
    allocator = std::make_unique<PromptReduceAllocator>();
  } else {
    allocator = std::make_unique<HashReduceAllocator>();
  }
  executor = std::make_unique<BatchExecutor>(job, CostModel(options_.cost),
                                             allocator.get(), options_.mode);
  executor->BindMetrics(registry, labels_);
  window = std::make_unique<WindowState>(job.reduce, job.window_batches);
  if (options_.elasticity_enabled) {
    elastic = std::make_unique<ElasticController>(
        options_.elasticity, options_.map_tasks, options_.reduce_tasks);
    elastic->BindMetrics(registry, labels_);
  }
  if (options_.batch_resizing_enabled) {
    resizer = std::make_unique<BatchIntervalController>(options_.batch_resizer);
  }
  // Every report carries the technique that sealed its batch when the
  // partitioner's name round-trips through the factory (custom partitioners
  // stay at -1).
  {
    Result<PartitionerType> type = PartitionerTypeFromName(partitioner->name());
    if (type.ok()) current_technique = static_cast<int32_t>(*type);
  }
  if (options_.adapt.enabled) {
    const auto& candidates = options_.adapt.candidates;
    const bool known = current_technique >= 0;
    const bool in_ladder =
        known && std::find(candidates.begin(), candidates.end(),
                           static_cast<PartitionerType>(current_technique)) !=
                     candidates.end();
    if (!in_ladder || candidates.empty()) {
      PROMPT_LOG(kWarn) << "adaptive switching disabled: initial partitioner '"
                        << partitioner->name()
                        << "' is not in the candidate set";
    } else {
      adapt = std::make_unique<AdaptivePartitionController>(
          options_.adapt, static_cast<PartitionerType>(current_technique));
      adapt->BindMetrics(registry, labels_);
    }
  }
}

void QueryContext::ObserveBatchEstimates(uint64_t tuples, uint64_t keys) {
  const double alpha = 0.4;
  if (!est_init) {
    est_tuples = static_cast<double>(tuples);
    est_keys = static_cast<double>(keys);
    est_init = true;
  } else {
    est_tuples = alpha * static_cast<double>(tuples) + (1 - alpha) * est_tuples;
    est_keys = alpha * static_cast<double>(keys) + (1 - alpha) * est_keys;
  }
  partitioner->UpdateEstimates(static_cast<uint64_t>(est_tuples),
                               static_cast<uint64_t>(est_keys));
}

void QueryContext::ApplyTechniqueSwitch(const AdaptiveDecision& decision) {
  std::unique_ptr<BatchPartitioner> next =
      CreatePartitioner(decision.to, options_.adapt.config);
  PROMPT_CHECK(next != nullptr);
  partitioner = std::move(next);
  // Warm start: the incoming technique inherits the EWMA workload estimates
  // (Alg. 1's N_est / K_avg feed) instead of re-learning from zero.
  if (est_init) {
    partitioner->UpdateEstimates(static_cast<uint64_t>(est_tuples),
                                 static_cast<uint64_t>(est_keys));
  }
  current_technique = static_cast<int32_t>(decision.to);
  pending_switch_mark = true;
  switched_from = static_cast<int32_t>(decision.from);
}

void QueryContext::MarkTechnique(BatchReport* report) {
  report->technique = current_technique;
  if (pending_switch_mark) {
    report->technique_switched = true;
    report->switched_from = switched_from;
    pending_switch_mark = false;
    switched_from = -1;
  }
}

}  // namespace prompt
