#include "tenant/tenant_scheduler.h"

#include <limits>

namespace prompt {

namespace {
/// Stride numerator: pass_i advances by kStrideScale / w_i per extra slot.
/// Large enough that distinct weights yield distinct strides, small enough
/// that passes never overflow in any realistic run length.
constexpr uint64_t kStrideScale = uint64_t{1} << 20;
}  // namespace

TenantScheduler::TenantScheduler(TenantSchedulerOptions options)
    : options_(options) {
  PROMPT_CHECK(options_.total_slots > 0);
}

Result<size_t> TenantScheduler::AddTenant(const std::string& id,
                                          uint32_t weight) {
  if (weight == 0) return Status::Invalid("tenant weight must be positive");
  for (const Tenant& t : tenants_) {
    if (t.id == id) return Status::Invalid("duplicate tenant id: " + id);
  }
  if (tenants_.size() + 1 > options_.total_slots) {
    return Status::Invalid("more tenants than slots: every tenant needs its "
                           "guaranteed minimum of 1");
  }
  // New tenants start at the stride's first tick, like a fresh stride-
  // scheduling job — not at pass 0, which would let a late joiner monopolize
  // remainder slots until it caught up.
  Tenant t;
  t.id = id;
  t.weight = weight;
  t.pending_weight = weight;
  t.pass = kStrideScale / weight;
  t.cumulative = 0;
  tenants_.push_back(std::move(t));
  return tenants_.size() - 1;
}

Status TenantScheduler::SetWeight(size_t tenant, uint32_t weight) {
  if (tenant >= tenants_.size()) return Status::OutOfRange("no such tenant");
  if (weight == 0) return Status::Invalid("tenant weight must be positive");
  tenants_[tenant].pending_weight = weight;
  return Status::OK();
}

std::vector<uint32_t> TenantScheduler::AllocateSlots() {
  PROMPT_CHECK(!tenants_.empty());
  // Batch boundary: pending weight changes land now, before any division.
  for (Tenant& t : tenants_) t.weight = t.pending_weight;

  uint64_t total_weight = 0;
  for (const Tenant& t : tenants_) total_weight += t.weight;

  // Guaranteed floor + proportional share of what remains.
  std::vector<uint32_t> slots(tenants_.size(), 1);
  const uint64_t avail = options_.total_slots - tenants_.size();
  uint64_t granted = 0;
  for (size_t i = 0; i < tenants_.size(); ++i) {
    const uint64_t extra = avail * tenants_[i].weight / total_weight;
    slots[i] += static_cast<uint32_t>(extra);
    granted += extra;
  }

  // Remainder (< #tenants slots) by stride order: min pass wins, ties break
  // on the lower index; the winner's pass advances by its stride.
  for (uint64_t r = granted; r < avail; ++r) {
    size_t winner = 0;
    uint64_t best = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < tenants_.size(); ++i) {
      if (tenants_[i].pass < best) {
        best = tenants_[i].pass;
        winner = i;
      }
    }
    slots[winner] += 1;
    tenants_[winner].pass += kStrideScale / tenants_[winner].weight;
  }

  for (size_t i = 0; i < tenants_.size(); ++i) {
    tenants_[i].cumulative += slots[i];
  }
  return slots;
}

}  // namespace prompt
