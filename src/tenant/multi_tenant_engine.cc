#include "tenant/multi_tenant_engine.h"

#include <algorithm>
#include <string_view>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "engine/serde.h"
#include "stats/metrics.h"

namespace prompt {

namespace {

/// The per-query slice of the shared options, specialized by one spec.
QueryContextOptions ContextOptionsFrom(const MultiTenantEngineOptions& options,
                                       const TenantQuerySpec& spec) {
  QueryContextOptions qc;
  qc.map_tasks = options.map_tasks;
  qc.reduce_tasks = options.reduce_tasks;
  qc.cost = options.cost;
  qc.mode = options.mode;
  qc.use_prompt_reduce = options.use_prompt_reduce;
  // Elasticity and batch resizing stay off: the slot pool is the scheduler's
  // to divide, and the interval is the shared heartbeat.
  if (spec.adaptive) {
    qc.adapt = options.adapt_base;
    qc.adapt.enabled = true;
    qc.adapt.d = spec.adapt_d;
    if (!spec.adapt_candidates.empty()) {
      qc.adapt.candidates = spec.adapt_candidates;
    }
  } else {
    qc.adapt.enabled = false;
  }
  return qc;
}

/// The multi-tenant manifest. Every key mirrors one read in the replayer's
/// MultiOptionsFromManifest (plus the tenant= spec lines SpecsFromManifest
/// consumes); ReplayResult::manifest_match catches drift between the two.
JournalManifest BuildMultiManifest(const MultiTenantEngineOptions& o,
                                   const std::vector<TenantQuerySpec>& specs) {
  JournalManifest m;
  m.Set("format", "prompt-journal-v1");
  m.Set("mode", "multi");
  m.Set("batch_interval", static_cast<int64_t>(o.batch_interval));
  m.Set("total_slots", static_cast<uint64_t>(o.total_slots));
  m.Set("map_tasks", static_cast<uint64_t>(o.map_tasks));
  m.Set("reduce_tasks", static_cast<uint64_t>(o.reduce_tasks));
  m.Set("exec_mode", o.mode == ExecutionMode::kReal ? "real" : "simulated");
  m.Set("use_prompt_reduce", o.use_prompt_reduce);
  m.Set("early_release_frac", o.early_release_frac);
  m.Set("unstable_queue_intervals", o.unstable_queue_intervals);
  m.Set("cost.map_task_fixed_us", o.cost.map_task_fixed_us);
  m.Set("cost.map_per_tuple_us", o.cost.map_per_tuple_us);
  m.Set("cost.map_per_key_us", o.cost.map_per_key_us);
  m.Set("cost.reduce_task_fixed_us", o.cost.reduce_task_fixed_us);
  m.Set("cost.reduce_per_tuple_us", o.cost.reduce_per_tuple_us);
  m.Set("cost.reduce_per_cluster_us", o.cost.reduce_per_cluster_us);
  m.Set("cost.partition_cost_scale", o.cost.partition_cost_scale);
  m.Set("cost.replicate_per_kib_us", o.cost.replicate_per_kib_us);
  {
    std::string csv;
    for (PartitionerType t : o.adapt_base.candidates) {
      if (!csv.empty()) csv += ',';
      csv += PartitionerTypeName(t);
    }
    m.Set("adapt.candidates", csv);
  }
  m.Set("adapt.grace", static_cast<int64_t>(o.adapt_base.grace));
  m.Set("adapt.window", static_cast<uint64_t>(o.adapt_base.window));
  m.Set("adapt.calm_block_load_ratio", o.adapt_base.calm_block_load_ratio);
  m.Set("adapt.calm_split_key_frac", o.adapt_base.calm_split_key_frac);
  m.Set("partitioner.accumulator",
        AccumulatorKindName(o.adapt_base.config.prompt.accumulator_kind));
  m.Set("partitioner.post_sort", o.adapt_base.config.prompt.post_sort);
  m.Set("partitioner.cam_candidates",
        static_cast<uint64_t>(o.adapt_base.config.cam_candidates));
  m.Set("partitioner.sketch_capacity",
        static_cast<uint64_t>(o.adapt_base.config.sketch_capacity));
  m.Set("obs.collect_partition_metrics", o.obs.collect_partition_metrics);
  m.Set("obs.autopsy.min_excess_frac", o.obs.autopsy.min_excess_frac);
  m.Set("obs.autopsy.min_excess_us",
        static_cast<int64_t>(o.obs.autopsy.min_excess_us));
  m.Set("obs.autopsy.ring_pressure_threshold",
        o.obs.autopsy.ring_pressure_threshold);
  m.Set("store.enabled", o.store.enabled());
  m.Set("store.fsync", FsyncPolicyName(o.store.fsync));
  m.Set("store.memory_budget_bytes",
        static_cast<uint64_t>(o.store.memory_budget_bytes));
  m.Set("store.retain_bytes", static_cast<uint64_t>(o.store.retain_bytes));
  m.Set("store.retain_batches", o.store.retain_batches);
  m.Set("ingest.shards", static_cast<uint64_t>(o.ingest.shards));
  m.Set("ingest.ring_capacity", static_cast<uint64_t>(o.ingest.ring_capacity));
  m.Set("ingest.accumulator", AccumulatorKindName(o.ingest.accumulator));
  m.Set("ingest.key_mode", KeyModeName(o.ingest.key_mode));
  for (const TenantQuerySpec& spec : specs) {
    m.Set("tenant", TenantSpecLine(spec));
  }
  return m;
}

}  // namespace

MultiTenantEngine::MultiTenantEngine(MultiTenantEngineOptions options,
                                     TupleSource* source)
    : options_(std::move(options)), source_(source) {}

MultiTenantEngine::~MultiTenantEngine() = default;

Result<std::unique_ptr<MultiTenantEngine>> MultiTenantEngine::Create(
    MultiTenantEngineOptions options, std::vector<TenantQuerySpec> specs,
    TupleSource* source) {
  if (source == nullptr) return Status::Invalid("source is null");
  if (specs.empty()) return Status::Invalid("no tenant specs");
  if (options.batch_interval <= 0) {
    return Status::Invalid("batch_interval must be positive");
  }
  for (const TenantQuerySpec& spec : specs) {
    if (spec.adaptive) {
      // The adaptive calm test reads block-load and split-key signals, so
      // the partition-metrics pass must run (same rule as the single-tenant
      // engine constructor).
      options.obs.collect_partition_metrics = true;
      break;
    }
  }

  auto engine = std::unique_ptr<MultiTenantEngine>(
      new MultiTenantEngine(std::move(options), source));
  const MultiTenantEngineOptions& opts = engine->options_;
  // Built before the specs are moved into tenants_; opened after recovery so
  // a journal on a failing store directory never leaves stray files behind.
  JournalManifest manifest;
  if (opts.journal.enabled()) manifest = BuildMultiManifest(opts, specs);

  engine->obs_ = std::make_unique<Observability>(opts.obs);
  if (!engine->obs_->init_status().ok()) {
    PROMPT_LOG(kWarn) << "observability sink setup failed: "
                      << engine->obs_->init_status().ToString();
  }
  engine->scheduler_ = std::make_unique<TenantScheduler>(
      TenantSchedulerOptions{opts.total_slots});

  // Per-tenant time-series geometry mirrors what Observability derives for
  // its (shared) default store.
  TimeSeriesOptions ts;
  ts.capacity = opts.obs.timeseries_capacity;
  if (opts.obs.serve_port >= 0 && ts.capacity == 0) ts.capacity = 1024;
  ts.window = opts.obs.timeseries_window;
  ts.ewma_alpha = opts.obs.timeseries_alpha;

  for (TenantQuerySpec& spec : specs) {
    PROMPT_RETURN_NOT_OK(
        engine->scheduler_->AddTenant(spec.id, spec.weight).status());

    Tenant tenant;
    JobSpec job = spec.query.job;
    job.window_batches = spec.query.window_batches();
    tenant.ctx = std::make_unique<QueryContext>(
        spec.id, ContextOptionsFrom(opts, spec), std::move(job),
        CreatePartitioner(spec.technique, opts.adapt_base.config),
        engine->obs_->registry(), MetricLabels{{"tenant", spec.id}});
    if (ts.capacity > 0) {
      tenant.ctx->timeseries = std::make_unique<TimeSeriesStore>(ts);
      if (engine->obs_->exporter() != nullptr) {
        engine->obs_->exporter()->AddTimeSeries(spec.id,
                                                tenant.ctx->timeseries.get());
      }
    }
    if (MetricsRegistry* registry = engine->obs_->registry()) {
      const MetricLabels labels{{"tenant", spec.id}};
      tenant.batches_total = registry->GetCounter("prompt_batches_total", labels);
      tenant.tuples_total = registry->GetCounter("prompt_tuples_total", labels);
      tenant.latency_us =
          registry->GetHistogram("prompt_batch_latency_us", labels);
      tenant.slots_gauge = registry->GetGauge("prompt_tenant_slots", labels);
      tenant.w_gauge = registry->GetGauge("prompt_batch_w", labels);
    }
    tenant.spec = std::move(spec);
    engine->tenants_.push_back(std::move(tenant));
  }

  // Sketch mode needs the shared pipeline even at one shard — only the
  // pipeline swaps in the sketch accumulator kind.
  if (opts.ingest.shards > 1 ||
      opts.ingest.key_mode == KeyMode::kSketch) {
    engine->ingest_ = std::make_unique<ParallelIngestPipeline>(opts.ingest);
    engine->ingest_->BindMetrics(engine->obs_->registry());
  }

  if (opts.store.enabled()) {
    // One shared segment log; tenant index = owner namespace. Recovery
    // replays each tenant's surviving batches into its own window, exactly
    // like the single-tenant path.
    PROMPT_ASSIGN_OR_RETURN(engine->durable_,
                            DurableBlockStore::Open(opts.store));
    engine->durable_->BindMetrics(engine->obs_->registry());
    DurableRecovery& rec = engine->durable_recovery_;
    rec.torn_records = engine->durable_->recovery().torn_records;
    rec.data_loss = rec.torn_records > 0;
    uint64_t max_recovered = 0;
    bool any = false;
    for (size_t ti = 0; ti < engine->tenants_.size(); ++ti) {
      QueryContext& ctx = *engine->tenants_[ti].ctx;
      for (uint64_t id :
           engine->durable_->LiveBatches(static_cast<uint32_t>(ti))) {
        Result<std::string> bytes =
            engine->durable_->Get(static_cast<uint32_t>(ti), id);
        Result<PartitionedBatch> decoded =
            bytes.ok() ? DecodeBatch(*bytes)
                       : Result<PartitionedBatch>(bytes.status());
        if (!decoded.ok()) {
          PROMPT_LOG(kWarn) << "tenant " << ctx.id()
                            << ": cannot recover batch " << id << ": "
                            << decoded.status().ToString();
          rec.data_loss = true;
          continue;
        }
        BatchExecution exec = engine->tenants_[ti].ctx->executor->Execute(
            *decoded, ctx.reduce_tasks,
            std::max<uint32_t>(1, opts.total_slots), nullptr);
        ctx.window->AddBatch(std::move(exec.output));
        ctx.next_batch_id = std::max(ctx.next_batch_id, id + 1);
        max_recovered = std::max(max_recovered, id);
        any = true;
        ++rec.batches_recovered;
      }
    }
    if (any) {
      // All tenants share the heartbeat clock: resume it past the newest
      // recovered batch anywhere in the log.
      engine->next_batch_start_ =
          static_cast<TimeMicros>(max_recovered + 1) * opts.batch_interval;
      for (Tenant& tenant : engine->tenants_) {
        tenant.ctx->next_batch_id = max_recovered + 1;
      }
    }
  }

  if (opts.journal.enabled()) {
    // Recording was explicitly requested; running unrecorded would break the
    // operator's replay guarantee silently — Create fails loudly instead.
    PROMPT_ASSIGN_OR_RETURN(engine->journal_,
                            JournalWriter::Open(opts.journal, manifest));
  }
  return engine;
}

const std::string& MultiTenantEngine::id(size_t tenant) const {
  return tenants_[tenant].spec.id;
}

const QueryContext& MultiTenantEngine::context(size_t tenant) const {
  return *tenants_[tenant].ctx;
}

const WindowState& MultiTenantEngine::window(size_t tenant) const {
  return *tenants_[tenant].ctx->window;
}

BatchReport MultiTenantEngine::ProcessTenantBatch(Tenant* tenant,
                                                  PartitionedBatch batch,
                                                  TimeMicros interval,
                                                  uint32_t slots) {
  QueryContext& ctx = *tenant->ctx;
  BatchReport report;
  report.batch_id = batch.batch_id;
  report.batch_interval = interval;
  report.num_tuples = batch.num_tuples;
  report.num_keys = batch.num_keys;
  report.map_tasks = static_cast<uint32_t>(batch.blocks.size());
  report.reduce_tasks = ctx.reduce_tasks;
  report.partition_cost = batch.partition_cost;
  report.sketch = batch.sketch;
  ctx.MarkTechnique(&report);

  // Early Batch Release (§4.2): same slack rule as the single-tenant engine.
  const TimeMicros slack = static_cast<TimeMicros>(
      options_.early_release_frac * static_cast<double>(interval));
  const TimeMicros scaled_cost = static_cast<TimeMicros>(
      options_.cost.partition_cost_scale *
      static_cast<double>(batch.partition_cost));
  report.partition_overflow = std::max<TimeMicros>(0, scaled_cost - slack);

  if (options_.obs.collect_partition_metrics) {
    report.partition_metrics =
        ComputeBlockMetrics(batch, options_.obs.mpi_weights);
  }

  // Both stages run on the tenant's granted slots — its weighted-fair share
  // of the pool this heartbeat, never the whole cluster.
  const uint32_t cores = std::max<uint32_t>(1, slots);
  BatchExecution exec =
      ctx.executor->Execute(batch, ctx.reduce_tasks, cores, pool_.get());

  report.map_makespan = exec.map_makespan;
  report.reduce_makespan = exec.reduce_makespan;
  report.processing_time =
      report.partition_overflow + exec.map_makespan + exec.reduce_makespan;
  report.w = static_cast<double>(report.processing_time) /
             static_cast<double>(interval);
  report.reduce_bucket_bsi = BucketSizeImbalance(exec.bucket_tuples);

  if (!exec.reduce_completions.empty()) {
    double sum = 0, lo = 1e300, hi = 0;
    for (TimeMicros c : exec.reduce_completions) {
      double ms = static_cast<double>(c) / 1000.0;
      sum += ms;
      lo = std::min(lo, ms);
      hi = std::max(hi, ms);
    }
    report.reduce_completion_mean_ms =
        sum / static_cast<double>(exec.reduce_completions.size());
    report.reduce_completion_min_ms = lo;
    report.reduce_completion_max_ms = hi;
  }

  // The fingerprint hashes the reduce output before the window consumes it;
  // computed only when recording (the hash walk is not free).
  if (journal_ != nullptr) {
    report.output_hash = HashBatchOutput(exec.output);
  }
  ctx.window->AddBatch(std::move(exec.output));
  return report;
}

MultiTenantRunSummary MultiTenantEngine::Run(uint32_t num_batches) {
  if (options_.mode == ExecutionMode::kReal && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.total_slots);
  }
  MultiTenantRunSummary run;
  run.tenants.resize(tenants_.size());
  for (size_t ti = 0; ti < tenants_.size(); ++ti) {
    run.tenants[ti].id = tenants_[ti].spec.id;
    run.tenants[ti].summary.batches.reserve(num_batches);
    run.tenants[ti].causes.reserve(num_batches);
  }
  if (obs_->active()) obs_->OnRunStart(num_batches);

  for (uint32_t i = 0; i < num_batches; ++i) {
    const TimeMicros interval = options_.batch_interval;
    const TimeMicros start = next_batch_start_;
    const TimeMicros end = start + interval;
    next_batch_start_ = end;

    // Weighted-fair slot shares for this heartbeat — decided before any data
    // is seen, from weights alone (demand can't shift shares).
    const std::vector<uint32_t> slots = scheduler_->AllocateSlots();

    // --- Batching phase: one drain of the shared source, fanned out. ---
    for (Tenant& tenant : tenants_) {
      tenant.ctx->partitioner->Begin(tenant.ctx->map_tasks, start, end);
    }
    if (ingest_ != nullptr) ingest_->BeginBatch(start, end);
    auto sink = [&](const Tuple& t) {
      // Flight-recorder tap: the raw consumed stream, before fan-out, so
      // replay re-derives every tenant's slice from the same tuples.
      if (journal_ != nullptr) journal_->RecordTuple(t);
      if (ingest_ != nullptr) {
        ingest_->Ingest(t);
        return;
      }
      for (Tenant& tenant : tenants_) {
        if (tenant.spec.filter.Matches(t.key)) {
          tenant.ctx->partitioner->OnTuple(t);
        }
      }
    };
    if (have_pending_ && pending_.ts < end) {
      sink(pending_);
      have_pending_ = false;
    }
    if (!have_pending_) {
      Tuple t;
      while (source_->Next(&t)) {
        if (t.ts >= end) {
          pending_ = t;
          have_pending_ = true;
          break;
        }
        sink(t);
      }
    }
    const AccumulatedBatch* merged =
        ingest_ != nullptr ? &ingest_->SealBatch() : nullptr;

    if (journal_ != nullptr) {
      // One tuple record per heartbeat, stamped with the shared batch id
      // (every tenant's next_batch_id agrees — they ride one clock).
      if (Status st = journal_->AppendBatchTuples(tenants_[0].ctx->next_batch_id);
          !st.ok()) {
        PROMPT_LOG(kWarn) << "journal tuple append failed: " << st.ToString();
      }
    }

    // --- Per-tenant seal + processing on the granted slots. ---
    for (size_t ti = 0; ti < tenants_.size(); ++ti) {
      Tenant& tenant = tenants_[ti];
      QueryContext& ctx = *tenant.ctx;
      TenantRunResult& result = run.tenants[ti];

      PartitionedBatch batch;
      if (merged != nullptr) {
        const bool takes_all =
            tenant.spec.filter.kind == KeyFilter::Kind::kAll;
        if (!(takes_all && ctx.partitioner->SealAccumulated(
                               *merged, ctx.next_batch_id, &batch))) {
          // Replay this tenant's slice of the merged quasi-sorted runs
          // through the per-tuple interface (filters select whole runs:
          // the predicate is on the key).
          for (const SortedKeyRun& key_run : merged->keys()) {
            if (!tenant.spec.filter.Matches(key_run.key)) continue;
            merged->ForEachTuple(key_run, 0, key_run.count,
                                 [&](const Tuple& t) {
                                   ctx.partitioner->OnTuple(t);
                                 });
          }
          // Sketch-mode tail buckets mix keys, so the filter applies per
          // tuple rather than per run.
          for (const TailBucket& bucket : merged->tail()) {
            merged->ForEachTailTuple(bucket, [&](const Tuple& t) {
              if (tenant.spec.filter.Matches(t.key)) {
                ctx.partitioner->OnTuple(t);
              }
            });
          }
          batch = ctx.partitioner->Seal(ctx.next_batch_id);
        }
        ++ctx.next_batch_id;
        // The shared merge sits on every tenant's critical path toward the
        // heartbeat — each one accounts it as decision cost.
        batch.partition_cost += ingest_->last_metrics().merge_latency;
      } else {
        batch = ctx.partitioner->Seal(ctx.next_batch_id++);
      }

      // Settled after the merge-latency add so the recorded partition_cost
      // is the final value a replay must reproduce.
      const BatchEnv batch_env = SettleBatchEnv(
          options_.journal.inject, static_cast<uint32_t>(ti), &batch,
          ingest_ != nullptr ? &ingest_->last_metrics() : nullptr);
      if (journal_ != nullptr) {
        if (Status st =
                journal_->AppendEnv(static_cast<uint32_t>(ti), batch_env);
            !st.ok()) {
          PROMPT_LOG(kWarn) << "tenant " << ctx.id()
                            << ": journal env append failed: " << st.ToString();
        }
      }

      if (durable_ != nullptr) {
        // Log the sealed batch before any stage runs (same rule as the
        // single-tenant engine); expired window slots free their records.
        const uint32_t owner = static_cast<uint32_t>(ti);
        if (Status st =
                durable_->Put(owner, batch.batch_id, EncodeBatch(batch));
            !st.ok()) {
          PROMPT_LOG(kWarn) << "tenant " << ctx.id()
                            << ": durable append failed: " << st.ToString();
        }
        if (batch.batch_id >= ctx.window->depth()) {
          if (Status st =
                  durable_->Evict(owner, batch.batch_id - ctx.window->depth());
              !st.ok()) {
            PROMPT_LOG(kWarn) << "tenant " << ctx.id()
                              << ": durable evict failed: " << st.ToString();
          }
        }
      }

      // Processing starts at the heartbeat, or when *this tenant's*
      // pipeline frees — one tenant's overflow queues behind its own slots.
      const TimeMicros proc_start = std::max(end, ctx.pipeline_free_at);
      BatchReport report =
          ProcessTenantBatch(&tenant, std::move(batch), interval, slots[ti]);
      report.queue_delay = proc_start - end;
      ctx.pipeline_free_at = proc_start + report.processing_time;
      report.latency = ctx.pipeline_free_at - start;
      if (ingest_ != nullptr) {
        report.ingest = ingest_->last_metrics();
        report.has_ingest = true;
      }
      InjectIngestEnv(options_.journal.inject, static_cast<uint32_t>(ti),
                      batch_env, &report);

      if (static_cast<double>(report.queue_delay) >
          options_.unstable_queue_intervals * static_cast<double>(interval)) {
        result.summary.stable = false;
        result.summary.unstable_at_batch =
            std::min(result.summary.unstable_at_batch, report.batch_id);
      }

      // Per-tenant feedback loops: EWMA estimates, autopsy, adaptation.
      ctx.ObserveBatchEstimates(report.num_tuples, report.num_keys);

      const BatchAutopsy autopsy = ExplainBatch(report, options_.obs.autopsy);
      result.causes.push_back(autopsy.dominant);
      ++result.cause_counts[static_cast<size_t>(autopsy.dominant)];
      obs_->EmitAutopsy(autopsy, ctx.id());

      if (ctx.adapt != nullptr) {
        const AdaptiveDecision decision =
            ctx.adapt->OnBatchCompleted(report, autopsy);
        if (decision.switch_now) {
          ctx.ApplyTechniqueSwitch(decision);
          if (journal_ != nullptr) {
            JournalSwitch js;
            js.owner = static_cast<uint32_t>(ti);
            js.after_batch = report.batch_id;
            js.from = static_cast<int32_t>(decision.from);
            js.to = static_cast<int32_t>(decision.to);
            js.reason = decision.reason;
            if (Status st = journal_->AppendSwitch(js); !st.ok()) {
              PROMPT_LOG(kWarn) << "tenant " << ctx.id()
                                << ": journal switch append failed: "
                                << st.ToString();
            }
          }
          result.summary.technique_switches.push_back(
              RunSummary::TechniqueSwitch{report.batch_id, decision.from,
                                          decision.to, decision.reason});
          if (std::string_view(decision.reason) == "skew") {
            ++result.summary.technique_switches_up;
          } else {
            ++result.summary.technique_switches_down;
          }
        }
      }

      if (ctx.timeseries != nullptr) ctx.timeseries->Observe(report);
      if (tenant.batches_total != nullptr) {
        tenant.batches_total->Increment();
        tenant.tuples_total->Increment(report.num_tuples);
        tenant.latency_us->Observe(static_cast<double>(report.latency));
        tenant.slots_gauge->Set(slots[ti]);
        tenant.w_gauge->Set(report.w);
      }

      result.slots_granted += slots[ti];
      if (journal_ != nullptr) {
        if (Status st = journal_->AppendOutcome(static_cast<uint32_t>(ti),
                                                OutcomeFrom(report, autopsy));
            !st.ok()) {
          PROMPT_LOG(kWarn) << "tenant " << ctx.id()
                            << ": journal outcome append failed: "
                            << st.ToString();
        }
      }
      result.summary.batches.push_back(std::move(report));
    }

    // Shared-ingest receiver feedback: the pipeline accumulates everyone's
    // tuples, so its Alg. 1 estimates track the *merged* totals.
    if (merged != nullptr) {
      constexpr double kAlpha = 0.4;
      const double mt = static_cast<double>(merged->num_tuples());
      // Sketch mode: num_keys() is promoted head runs only; use the HLL
      // estimate so K_avg (and the auto promote threshold derived from it)
      // tracks true cardinality instead of spiraling toward 1.
      const double mk = static_cast<double>(
          merged->stats().sketch_mode
              ? std::max(merged->num_keys(), merged->stats().distinct_estimate)
              : merged->num_keys());
      if (!est_init_) {
        est_tuples_ = mt;
        est_keys_ = mk;
        est_init_ = true;
      } else {
        est_tuples_ = kAlpha * mt + (1 - kAlpha) * est_tuples_;
        est_keys_ = kAlpha * mk + (1 - kAlpha) * est_keys_;
      }
      ingest_->UpdateEstimates(static_cast<uint64_t>(est_tuples_),
                               static_cast<uint64_t>(est_keys_));
    }

    if (durable_ != nullptr && options_.store.fsync == FsyncPolicy::kBatch) {
      // One durability point per heartbeat covers every tenant's append.
      if (Status st = durable_->Sync(); !st.ok()) {
        PROMPT_LOG(kWarn) << "durable sync failed: " << st.ToString();
      }
    }
    if (journal_ != nullptr) {
      // Same cadence as the durable store: one journal durability point per
      // heartbeat covers every tenant's records.
      if (Status st = journal_->SyncBatch(); !st.ok()) {
        PROMPT_LOG(kWarn) << "journal sync failed: " << st.ToString();
      }
    }

    if (HttpExporter* exporter = obs_->exporter(); exporter != nullptr) {
      HealthStatus health;
      health.data_loss = durable_recovery_.data_loss;
      health.last_batch_id =
          static_cast<int64_t>(tenants_[0].ctx->next_batch_id) - 1;
      health.journal_lag_bytes =
          journal_ != nullptr ? journal_->unsynced_bytes() : 0;
      exporter->UpdateHealth(health);
    }
  }
  if (obs_->active()) obs_->OnRunEnd();
  return run;
}

}  // namespace prompt
