// Weighted-fair task-slot scheduling across tenants (stride scheduling /
// WFQ): each heartbeat the scheduler hands every tenant a deterministic
// share of the shared map/reduce task slots proportional to its weight.
// Allocation depends on weights alone — never on demand — so a tenant whose
// batches overflow its share queues behind *its own* slots and cannot starve
// a neighbor (the noisy-neighbor isolation property the multi-tenant bench
// asserts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"

namespace prompt {

struct TenantSchedulerOptions {
  /// Shared task-slot pool divided each heartbeat (the cluster's cores).
  uint32_t total_slots = 16;
};

/// \brief Deterministic weighted-fair slot allocator.
///
/// Per heartbeat (AllocateSlots):
///  1. pending weight changes are applied — SetWeight only ever takes effect
///     at a batch boundary, so no in-flight batch changes shares;
///  2. every tenant gets 1 guaranteed slot (starvation-freedom by
///     construction) plus floor(remaining * w_i / W) proportional slots;
///  3. leftover slots (< #tenants) go to the lowest-pass tenants in stride
///     order (pass_i advances by S / w_i per extra slot, ties break on the
///     lower tenant index), so the remainder rotates fairly across
///     heartbeats and cumulative shares converge to the exact weight ratio.
///
/// Everything is integer arithmetic on fixed inputs: same weights, same
/// sequence of AllocateSlots calls → bit-identical allocations on every
/// platform (the determinism guarantee DESIGN.md §12 documents).
class TenantScheduler {
 public:
  explicit TenantScheduler(TenantSchedulerOptions options);
  PROMPT_DISALLOW_COPY_AND_ASSIGN(TenantScheduler);

  /// Registers a tenant; returns its index (the slot-vector position).
  /// Invalid on duplicate id, zero weight, or more tenants than slots.
  Result<size_t> AddTenant(const std::string& id, uint32_t weight);

  /// Queues a weight change; applied by the next AllocateSlots call (batch
  /// boundary), never mid-heartbeat. Invalid on zero weight / bad index.
  Status SetWeight(size_t tenant, uint32_t weight);

  /// One heartbeat's slot allocation, tenant-indexed. Sums to total_slots;
  /// every entry >= 1.
  std::vector<uint32_t> AllocateSlots();

  size_t tenants() const { return tenants_.size(); }
  const std::string& id(size_t tenant) const { return tenants_[tenant].id; }
  /// The weight AllocateSlots would use now (pending changes not yet
  /// applied are visible through pending_weight).
  uint32_t weight(size_t tenant) const { return tenants_[tenant].weight; }
  uint32_t pending_weight(size_t tenant) const {
    return tenants_[tenant].pending_weight;
  }
  /// Slots handed to `tenant` over all heartbeats so far.
  uint64_t cumulative_slots(size_t tenant) const {
    return tenants_[tenant].cumulative;
  }
  uint32_t total_slots() const { return options_.total_slots; }

 private:
  struct Tenant {
    std::string id;
    uint32_t weight;
    uint32_t pending_weight;  ///< applied at the next AllocateSlots
    uint64_t pass;            ///< stride scheduling virtual time
    uint64_t cumulative;      ///< lifetime slots granted
  };

  TenantSchedulerOptions options_;
  std::vector<Tenant> tenants_;
};

}  // namespace prompt
