#include "core/sketch_accumulator.h"

#include <algorithm>

#include "common/hash.h"

namespace prompt {

namespace {
/// Tail-bucket hash seed. Fixed and shared by every shard so a tail key maps
/// to the same bucket everywhere — the invariant that lets the pipeline
/// concatenate per-shard buckets and the partitioner place each bucket on
/// one block without splitting tail keys.
constexpr uint64_t kTailBucketSeed = 0x7a11u;
}  // namespace

SketchAccumulator::SketchAccumulator(AccumulatorOptions options)
    : options_(options),
      sketch_(std::make_unique<SpaceSaving>(
          std::max<uint32_t>(1, options.sketch.capacity))),
      table_(1024) {}

const char* SketchAccumulator::name() const {
  return AccumulatorKindName(AccumulatorKind::kSketch);
}

void SketchAccumulator::Begin(TimeMicros start, TimeMicros end) {
  PROMPT_CHECK(end > start);
  batch_start_ = start;
  batch_end_ = end;
  num_tuples_ = 0;
  head_tuples_ = 0;
  tail_tuples_ = 0;
  ordering_updates_ = 0;
  table_.Clear();
  states_.clear();
  key_col_.clear();
  ts_col_.clear();
  value_col_.clear();
  next_.clear();
  hll_.Clear();

  const uint32_t want_capacity = std::max<uint32_t>(1, options_.sketch.capacity);
  if (sketch_->capacity() != want_capacity) {
    sketch_ = std::make_unique<SpaceSaving>(want_capacity);
  } else {
    sketch_->Clear();
  }
  if (options_.sketch.cms_width > 0) {
    if (cms_ == nullptr || cms_->width() < options_.sketch.cms_width ||
        cms_->depth() != options_.sketch.cms_depth) {
      cms_ = std::make_unique<CountMin>(
          options_.sketch.cms_width,
          std::max<uint32_t>(1, options_.sketch.cms_depth));
    } else {
      cms_->Clear();
    }
  } else {
    cms_.reset();
  }

  const uint32_t buckets = std::max<uint32_t>(1, options_.sketch.tail_buckets);
  tail_buckets_.assign(buckets, TailBucket{});

  // Same step seeding as the exact paths: f <- N_est / (K_avg * budget).
  const uint64_t denom =
      std::max<uint64_t>(1, options_.avg_keys * options_.budget);
  initial_f_step_ = std::max<uint64_t>(1, options_.estimated_tuples / denom);
  // Auto promotion threshold: a key earns exact state once it looks several
  // times heavier than the average key. Clamped below so uniform streams
  // (N_est ~ K_avg) don't promote the entire key space.
  promote_threshold_ =
      options_.sketch.promote_threshold > 0
          ? options_.sketch.promote_threshold
          : std::max<uint64_t>(
                8, 4 * options_.estimated_tuples /
                       std::max<uint64_t>(1, options_.avg_keys));
}

void SketchAccumulator::Reset() {
  num_tuples_ = 0;
  head_tuples_ = 0;
  tail_tuples_ = 0;
  ordering_updates_ = 0;
  table_ = RobinHoodMap<uint32_t>(1024);
  std::vector<KeyState>().swap(states_);
  std::vector<TailBucket>().swap(tail_buckets_);
  std::vector<KeyId>().swap(key_col_);
  std::vector<TimeMicros>().swap(ts_col_);
  std::vector<double>().swap(value_col_);
  std::vector<uint32_t>().swap(next_);
  sketch_ = std::make_unique<SpaceSaving>(
      std::max<uint32_t>(1, options_.sketch.capacity));
  cms_.reset();
  hll_.Clear();
}

size_t SketchAccumulator::key_state_bytes() const {
  return sketch_->capacity_bytes() +
         (cms_ != nullptr ? cms_->capacity_bytes() : 0) + hll_.memory_bytes() +
         table_.capacity_bytes() + states_.capacity() * sizeof(KeyState) +
         tail_buckets_.capacity() * sizeof(TailBucket);
}

size_t SketchAccumulator::capacity_bytes() const {
  return key_state_bytes() + key_col_.capacity() * sizeof(KeyId) +
         ts_col_.capacity() * sizeof(TimeMicros) +
         value_col_.capacity() * sizeof(double) +
         next_.capacity() * sizeof(uint32_t);
}

void SketchAccumulator::RankUpdate(KeyState& ks, TimeMicros now) {
  // Identical budget state machine to the flat accumulator; only the head
  // keys pay for ordering maintenance, so total rank work is bounded by
  // sketch_capacity * budget regardless of the distinct-key count.
  ++ordering_updates_;
  ks.freq_updated = ks.freq_current;
  if (ks.budget_left > 0) --ks.budget_left;
  const uint64_t n_c = std::max<uint64_t>(1, num_tuples_);
  const uint64_t base =
      std::max<uint64_t>(1, options_.estimated_tuples /
                                std::max<uint32_t>(1, options_.budget));
  ks.f_step = std::max<uint64_t>(1, base * ks.freq_current / n_c);
  const TimeMicros remaining = std::max<TimeMicros>(0, batch_end_ - now);
  ks.t_next =
      now + remaining / std::max<uint32_t>(1, ks.budget_left ? ks.budget_left : 1);
}

void SketchAccumulator::Promote(KeyId key, uint64_t estimate,
                                uint32_t tuple_idx, TimeMicros now) {
  // The key leaves the sketch — its counter slot goes back to tracking tail
  // candidates — and starts an exact chain with the current tuple. Earlier
  // occurrences stay in its tail bucket; rank_base preserves them in the
  // seal ordering.
  sketch_->Remove(key);
  uint32_t& state_idx = table_.GetOrInsert(key);
  state_idx = static_cast<uint32_t>(states_.size());
  KeyState ks;
  ks.key = key;
  ks.freq_current = 1;
  ks.freq_updated = 1;
  ks.rank_base = estimate > 0 ? estimate - 1 : 0;
  ks.budget_left = options_.budget;
  ks.f_step = initial_f_step_;
  const TimeMicros remaining = std::max<TimeMicros>(0, batch_end_ - now);
  ks.t_next = now + remaining / std::max<uint32_t>(1, options_.budget);
  ks.head = ks.tail = tuple_idx;
  states_.push_back(ks);
}

void SketchAccumulator::OnTuple(const Tuple& t) {
  const TimeMicros now = t.ts;
  ++num_tuples_;

  const uint32_t tuple_idx = static_cast<uint32_t>(key_col_.size());
  key_col_.push_back(t.key);
  ts_col_.push_back(t.ts);
  value_col_.push_back(t.value);
  next_.push_back(SortedKeyRun::kNoTuple);

  // Head path: the key already has exact state.
  if (uint32_t* state_idx = table_.Find(t.key)) {
    KeyState& ks = states_[*state_idx];
    next_[ks.tail] = tuple_idx;
    ks.tail = tuple_idx;
    ++ks.freq_current;
    ++head_tuples_;
    if (ks.budget_left == 0) return;
    const uint64_t delta_freq = ks.freq_current - ks.freq_updated;
    if (delta_freq >= ks.f_step || now >= ks.t_next) RankUpdate(ks, now);
    return;
  }

  // Tail path: sketch first, then decide promotion.
  hll_.Add(t.key);
  sketch_->Add(t.key);
  if (cms_ != nullptr) cms_->Add(t.key);
  uint64_t estimate = sketch_->Estimate(t.key);
  if (cms_ != nullptr) {
    // Veto Space-Saving's inherited-count over-estimates: both independent
    // sketches must agree the key is heavy.
    estimate = std::min(estimate, cms_->Estimate(t.key));
  }
  if (estimate >= promote_threshold_ &&
      states_.size() < options_.sketch.capacity) {
    Promote(t.key, estimate, tuple_idx, now);
    ++head_tuples_;
    return;
  }

  TailBucket& bucket =
      tail_buckets_[HashKey(t.key, kTailBucketSeed) % tail_buckets_.size()];
  if (bucket.tail == SortedKeyRun::kNoTuple) {
    bucket.head = tuple_idx;
  } else {
    next_[bucket.tail] = tuple_idx;
  }
  bucket.tail = tuple_idx;
  ++bucket.tuples;
  ++tail_tuples_;
}

void SketchAccumulator::MergeSketchFrom(const SketchAccumulator& other) {
  sketch_->Merge(*other.sketch_);
  const Status s = hll_.Merge(other.hll_);
  PROMPT_CHECK_MSG(s.ok(), "HLL precision mismatch across shards");
}

SketchBatchStats SketchAccumulator::ComputeStats() const {
  SketchBatchStats stats;
  stats.sketch_mode = true;
  stats.head_tuples = head_tuples_;
  stats.tail_tuples = tail_tuples_;
  stats.tracked_keys = sketch_->size();
  stats.promoted_keys = states_.size();
  stats.min_count = sketch_->MinCount();
  stats.distinct_estimate = static_cast<uint64_t>(hll_.Estimate());
  uint64_t error_sum = 0;
  for (const SpaceSaving::Entry& e : sketch_->entries()) error_sum += e.error;
  const uint64_t n = std::max<uint64_t>(1, num_tuples_);
  stats.error_frac = static_cast<double>(error_sum) / static_cast<double>(n);
  return stats;
}

AccumulatedBatch SketchAccumulator::MakeBatch(
    std::vector<SortedKeyRun> keys) const {
  return AccumulatedBatch::FromMergedSketch(num_tuples_, std::move(keys),
                                            storage(), tail_buckets_,
                                            ComputeStats());
}

AccumulatedBatch SketchAccumulator::Seal() {
  // Rank promoted keys by their best full-batch frequency estimate
  // (rank_base folds in pre-promotion occurrences) while counts stay
  // chain-exact. Deterministic: (rank desc, key desc) total order.
  struct SealEntry {
    uint64_t rank = 0;
    SortedKeyRun run;
  };
  std::vector<SealEntry> entries;
  entries.reserve(states_.size());
  for (const KeyState& ks : states_) {
    entries.push_back(SealEntry{ks.rank_base + ks.freq_updated,
                                SortedKeyRun{ks.key, ks.freq_current,
                                             ks.head}});
  }
  std::sort(entries.begin(), entries.end(),
            [](const SealEntry& a, const SealEntry& b) {
              return a.rank != b.rank ? a.rank > b.rank
                                      : a.run.key > b.run.key;
            });
  std::vector<SortedKeyRun> keys;
  keys.reserve(entries.size());
  for (const SealEntry& e : entries) keys.push_back(e.run);
  return MakeBatch(std::move(keys));
}

AccumulatedBatch SketchAccumulator::SealWithPostSort() {
  std::vector<SortedKeyRun> keys;
  keys.reserve(states_.size());
  for (const KeyState& ks : states_) {
    keys.push_back(SortedKeyRun{ks.key, ks.freq_current, ks.head});
  }
  std::sort(keys.begin(), keys.end(),
            [this](const SortedKeyRun& a, const SortedKeyRun& b) {
              const uint64_t ra = states_[*table_.Find(a.key)].rank_base + a.count;
              const uint64_t rb = states_[*table_.Find(b.key)].rank_base + b.count;
              return ra != rb ? ra > rb : a.key < b.key;
            });
  return MakeBatch(std::move(keys));
}

}  // namespace prompt
