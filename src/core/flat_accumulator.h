// Flat columnar implementation of Alg. 1 (paper §4.1): robin-hood hashing
// over SoA tuple storage, with the CountTree replaced by a radix-partitioned
// seal. Callers should obtain it via MakeAccumulator() (accumulator_api.h)
// rather than naming this class.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/robin_hood_map.h"
#include "core/accumulator_api.h"

namespace prompt {

/// \brief The fast-path accumulator. Produces output bit-identical to
/// LegacyChainAccumulator — same key order, counts, and chains — without
/// maintaining an ordering structure per tuple.
///
/// Key insight: the legacy CountTree orders keys ascending by
/// (count, key), and its reverse in-order seal therefore emits descending
/// (freq_updated, key) — larger key first on count ties — where
/// freq_updated is each key's last *budgeted* frequency. That final rank is
/// fully determined by the per-key budget state machine (f_step / t_next),
/// which is plain integer arithmetic independent of the tree. So this
/// implementation runs the identical state machine per tuple — updating a
/// key's freq_updated costs a few ALU ops instead of an O(log K) AVL
/// erase+insert — and materializes the order once at Seal() via a two-phase
/// radix-partitioned merge:
///   phase 1 scatters keys into 64 buckets by bit-width of freq_updated
///   (a power-of-two frequency histogram, coarsest-to-finest);
///   phase 2 exact-sorts each small bucket by (freq_updated desc, key desc)
///   and concatenates buckets high-to-low.
/// Tuple storage is columnar (key/ts/value/next arrays) rather than an
/// array-of-Tuple arena, which is what TupleStorageView's columnar flavor
/// exposes downstream.
class FlatAccumulator final : public Accumulator {
 public:
  explicit FlatAccumulator(AccumulatorOptions options = {})
      : options_(options), table_(1024) {}
  PROMPT_DISALLOW_COPY_AND_ASSIGN(FlatAccumulator);

  const char* name() const override;
  void Begin(TimeMicros start, TimeMicros end) override;
  void OnTuple(const Tuple& t) override;
  AccumulatedBatch Seal() override;
  AccumulatedBatch SealWithPostSort() override;
  void Reset() override;

  uint64_t num_tuples() const override { return num_tuples_; }
  uint64_t num_keys() const override { return states_.size(); }
  uint64_t ordering_updates() const override { return ordering_updates_; }
  size_t capacity_bytes() const override;

  /// Key-proportional state: hash table + per-key records + seal buckets
  /// (tuple columns are O(tuples) and excluded).
  size_t key_state_bytes() const override {
    size_t bytes =
        table_.capacity_bytes() + states_.capacity() * sizeof(KeyState);
    for (const auto& bucket : radix_buckets_) {
      bytes += bucket.capacity() * sizeof(SealEntry);
    }
    return bytes;
  }

  TupleStorageView storage() const override {
    return TupleStorageView::Columns(key_col_.data(), ts_col_.data(),
                                     value_col_.data(), next_.data(),
                                     key_col_.size());
  }

  const AccumulatorOptions& options() const override { return options_; }
  void set_options(const AccumulatorOptions& o) override { options_ = o; }

 private:
  /// Per-key state, dense (index-addressed by the hash table's value). Same
  /// budget fields and transitions as the legacy KeyState; `key` is carried
  /// here so Seal() never touches the hash table.
  struct KeyState {
    uint64_t freq_current = 0;
    uint64_t freq_updated = 0;
    uint64_t f_step = 1;
    TimeMicros t_next = 0;
    KeyId key = 0;
    uint32_t budget_left = 0;
    uint32_t head = SortedKeyRun::kNoTuple;
    uint32_t tail = SortedKeyRun::kNoTuple;
  };

  /// A key queued for phase-2 sorting: rank fields + run payload.
  struct SealEntry {
    uint64_t freq_updated = 0;
    SortedKeyRun run;
  };

  void RankUpdate(KeyState& ks, TimeMicros now);
  AccumulatedBatch MakeBatch(std::vector<SortedKeyRun> keys) const;

  AccumulatorOptions options_;
  RobinHoodMap<uint32_t> table_;  ///< key -> index into states_
  std::vector<KeyState> states_;
  // Columnar tuple storage (SoA): tuple i is (ts_col_[i], key_col_[i],
  // value_col_[i]) with chain link next_[i].
  std::vector<KeyId> key_col_;
  std::vector<TimeMicros> ts_col_;
  std::vector<double> value_col_;
  std::vector<uint32_t> next_;
  /// Phase-1 radix buckets, indexed by bit_width(freq_updated) - 1; member
  /// so their capacity survives across batches.
  std::array<std::vector<SealEntry>, 64> radix_buckets_;
  TimeMicros batch_start_ = 0;
  TimeMicros batch_end_ = 0;
  uint64_t num_tuples_ = 0;
  uint64_t initial_f_step_ = 1;
  uint64_t ordering_updates_ = 0;
};

}  // namespace prompt
