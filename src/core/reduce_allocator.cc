#include "core/reduce_allocator.h"

#include <algorithm>
#include <numeric>

#include "common/hash.h"

namespace prompt {

namespace {
// Seed shared by every Map task so split keys collide onto the same bucket
// without coordination.
constexpr uint64_t kReduceHashSeed = 0x5eedf00dULL;

uint32_t BucketOf(KeyId key, uint32_t num_buckets) {
  return static_cast<uint32_t>(HashKey(key, kReduceHashSeed) % num_buckets);
}
}  // namespace

std::vector<uint32_t> HashReduceAllocator::Assign(
    const std::vector<KeyCluster>& clusters, uint32_t num_buckets) {
  std::vector<uint32_t> assignment(clusters.size());
  for (size_t i = 0; i < clusters.size(); ++i) {
    assignment[i] = BucketOf(clusters[i].key, num_buckets);
  }
  return assignment;
}

std::vector<uint32_t> PromptReduceAllocator::Assign(
    const std::vector<KeyCluster>& clusters, uint32_t num_buckets) {
  std::vector<uint32_t> assignment(clusters.size());
  if (num_buckets == 0) return assignment;

  // Expected even share per bucket (Alg. 3 line 1).
  uint64_t total = 0;
  for (const KeyCluster& c : clusters) total += c.size;
  const double bucket_size =
      static_cast<double>(total) / static_cast<double>(num_buckets);

  // Lines 2-3: split keys must follow the global hash; they consume capacity.
  std::vector<double> used(num_buckets, 0.0);
  std::vector<size_t> non_split;
  non_split.reserve(clusters.size());
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (clusters[i].split) {
      uint32_t b = BucketOf(clusters[i].key, num_buckets);
      assignment[i] = b;
      used[b] += static_cast<double>(clusters[i].size);
    } else {
      non_split.push_back(i);
    }
  }

  // Line 4: sort non-split clusters by decreasing size.
  std::sort(non_split.begin(), non_split.end(), [&](size_t a, size_t b) {
    return clusters[a].size != clusters[b].size
               ? clusters[a].size > clusters[b].size
               : clusters[a].key < clusters[b].key;
  });

  // Lines 5-12: Worst-Fit with bucket retirement — each chosen bucket
  // leaves the candidate set until all buckets received a cluster, which
  // also balances the number of clusters per bucket.
  std::vector<char> available(num_buckets, 1);
  uint32_t available_count = num_buckets;
  for (size_t i : non_split) {
    if (available_count == 0) {
      std::fill(available.begin(), available.end(), 1);
      available_count = num_buckets;
    }
    uint32_t best = 0;
    double best_room = -1e300;
    for (uint32_t b = 0; b < num_buckets; ++b) {
      if (!available[b]) continue;
      double room = bucket_size - used[b];
      if (room > best_room) {
        best_room = room;
        best = b;
      }
    }
    assignment[i] = best;
    used[best] += static_cast<double>(clusters[i].size);
    available[best] = 0;
    --available_count;
  }
  return assignment;
}

}  // namespace prompt
