// Processing-phase partitioning (paper §5, Algorithm 3): each Map task
// locally assigns its output key clusters to Reduce buckets.
#pragma once

#include <cstdint>
#include <vector>

#include "model/tuple.h"

namespace prompt {

/// \brief One key cluster of a Map task's intermediate output: all values it
/// produced for a key, plus the block reference-table bit saying whether the
/// key is split across blocks of this batch.
struct KeyCluster {
  KeyId key = 0;
  uint64_t size = 0;  ///< number of intermediate (k, v) pairs
  bool split = false;
};

/// \brief Assigns each cluster index to a Reduce bucket.
///
/// Correctness constraint shared by all implementations: a *split* key must
/// map to the same bucket from every Map task without coordination, so split
/// keys always go through a deterministic hash. Implementations differ in
/// how they place the non-split clusters.
class ReduceAllocator {
 public:
  virtual ~ReduceAllocator() = default;
  virtual const char* name() const = 0;

  /// Returns assignment[i] = bucket of clusters[i], with num_buckets >= 1.
  virtual std::vector<uint32_t> Assign(const std::vector<KeyCluster>& clusters,
                                       uint32_t num_buckets) = 0;
};

/// \brief Baseline: bucket = hash(key) % r for every cluster (conventional
/// Spark-style shuffle; Fig. 8a).
class HashReduceAllocator final : public ReduceAllocator {
 public:
  const char* name() const override { return "HashShuffle"; }
  std::vector<uint32_t> Assign(const std::vector<KeyCluster>& clusters,
                               uint32_t num_buckets) override;
};

/// \brief Algorithm 3: split keys are hashed; non-split clusters are sorted
/// by decreasing size and placed with Worst-Fit over remaining bucket
/// capacity, removing each chosen bucket from candidacy until every bucket
/// has received a cluster (balances cluster counts, limits overflow).
///
/// The expected bucket size |I|/r is computed from this Map task's own
/// output only — no inter-task communication — and the residual capacity
/// after hashing the split keys defines the variable bin capacities of the
/// B-BPVC formulation.
class PromptReduceAllocator final : public ReduceAllocator {
 public:
  const char* name() const override { return "PromptWorstFit"; }
  std::vector<uint32_t> Assign(const std::vector<KeyCluster>& clusters,
                               uint32_t num_buckets) override;
};

}  // namespace prompt
