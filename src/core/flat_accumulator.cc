#include "core/flat_accumulator.h"

#include <algorithm>
#include <bit>

namespace prompt {

const char* FlatAccumulator::name() const {
  return AccumulatorKindName(AccumulatorKind::kFlat);
}

void FlatAccumulator::Begin(TimeMicros start, TimeMicros end) {
  PROMPT_CHECK(end > start);
  batch_start_ = start;
  batch_end_ = end;
  num_tuples_ = 0;
  ordering_updates_ = 0;
  table_.Clear();
  states_.clear();
  key_col_.clear();
  ts_col_.clear();
  value_col_.clear();
  next_.clear();
  // Identical step seeding to the legacy path: f <- N_est / (K_avg * budget).
  const uint64_t denom =
      std::max<uint64_t>(1, options_.avg_keys * options_.budget);
  initial_f_step_ = std::max<uint64_t>(1, options_.estimated_tuples / denom);
}

void FlatAccumulator::Reset() {
  num_tuples_ = 0;
  ordering_updates_ = 0;
  table_ = RobinHoodMap<uint32_t>(1024);
  std::vector<KeyState>().swap(states_);
  std::vector<KeyId>().swap(key_col_);
  std::vector<TimeMicros>().swap(ts_col_);
  std::vector<double>().swap(value_col_);
  std::vector<uint32_t>().swap(next_);
  for (auto& bucket : radix_buckets_) std::vector<SealEntry>().swap(bucket);
}

size_t FlatAccumulator::capacity_bytes() const {
  size_t bytes = table_.capacity_bytes() +
                 states_.capacity() * sizeof(KeyState) +
                 key_col_.capacity() * sizeof(KeyId) +
                 ts_col_.capacity() * sizeof(TimeMicros) +
                 value_col_.capacity() * sizeof(double) +
                 next_.capacity() * sizeof(uint32_t);
  for (const auto& bucket : radix_buckets_) {
    bytes += bucket.capacity() * sizeof(SealEntry);
  }
  return bytes;
}

void FlatAccumulator::RankUpdate(KeyState& ks, TimeMicros now) {
  // The legacy path repositions the key in the CountTree here; the flat path
  // only refreshes the rank fields — the order is materialized at Seal().
  // Every arithmetic step below mirrors LegacyChainAccumulator::TreeUpdate.
  ++ordering_updates_;
  ks.freq_updated = ks.freq_current;
  if (ks.budget_left > 0) --ks.budget_left;
  const uint64_t n_c = std::max<uint64_t>(1, num_tuples_);
  const uint64_t base =
      std::max<uint64_t>(1, options_.estimated_tuples /
                                std::max<uint32_t>(1, options_.budget));
  ks.f_step = std::max<uint64_t>(1, base * ks.freq_current / n_c);
  const TimeMicros remaining = std::max<TimeMicros>(0, batch_end_ - now);
  ks.t_next =
      now + remaining / std::max<uint32_t>(1, ks.budget_left ? ks.budget_left : 1);
}

void FlatAccumulator::OnTuple(const Tuple& t) {
  const TimeMicros now = t.ts;
  ++num_tuples_;

  const uint32_t tuple_idx = static_cast<uint32_t>(key_col_.size());
  key_col_.push_back(t.key);
  ts_col_.push_back(t.ts);
  value_col_.push_back(t.value);
  next_.push_back(SortedKeyRun::kNoTuple);

  bool inserted = false;
  uint32_t& state_idx = table_.GetOrInsert(t.key, &inserted);
  if (inserted) {
    state_idx = static_cast<uint32_t>(states_.size());
    KeyState ks;
    ks.key = t.key;
    ks.freq_current = 1;
    ks.freq_updated = 1;
    ks.budget_left = options_.budget;
    ks.f_step = initial_f_step_;
    const TimeMicros remaining = std::max<TimeMicros>(0, batch_end_ - now);
    ks.t_next = now + remaining / std::max<uint32_t>(1, options_.budget);
    ks.head = ks.tail = tuple_idx;
    states_.push_back(ks);
    return;
  }

  KeyState& ks = states_[state_idx];
  next_[ks.tail] = tuple_idx;
  ks.tail = tuple_idx;
  ++ks.freq_current;

  if (ks.budget_left == 0) return;  // budget exhausted: rank stays stale
  const uint64_t delta_freq = ks.freq_current - ks.freq_updated;
  if (delta_freq >= ks.f_step || now >= ks.t_next) RankUpdate(ks, now);
}

AccumulatedBatch FlatAccumulator::MakeBatch(
    std::vector<SortedKeyRun> keys) const {
  return AccumulatedBatch::FromMerged(num_tuples_, std::move(keys), storage());
}

AccumulatedBatch FlatAccumulator::Seal() {
  // Two-phase radix-partitioned merge reproducing the CountTree's reverse
  // in-order traversal: descending (freq_updated, key), larger key first on
  // ties, while the emitted counts stay the exact freq_current.
  //
  // Phase 1: scatter every key into one of 64 buckets by the bit-width of
  // its freq_updated (>= 1 always). Buckets are already ordered relative to
  // each other — every key in a higher bucket outranks every key in a lower
  // one — so phase 2 only sorts within buckets, each a small fraction of K.
  for (auto& bucket : radix_buckets_) bucket.clear();
  for (const KeyState& ks : states_) {
    const int bw = std::bit_width(ks.freq_updated);
    radix_buckets_[bw - 1].push_back(
        SealEntry{ks.freq_updated, SortedKeyRun{ks.key, ks.freq_current,
                                                ks.head}});
  }

  // Phase 2: exact-sort each bucket, concatenate high-to-low.
  std::vector<SortedKeyRun> keys;
  keys.reserve(states_.size());
  for (int b = 63; b >= 0; --b) {
    std::vector<SealEntry>& bucket = radix_buckets_[b];
    if (bucket.empty()) continue;
    std::sort(bucket.begin(), bucket.end(),
              [](const SealEntry& a, const SealEntry& b) {
                return a.freq_updated != b.freq_updated
                           ? a.freq_updated > b.freq_updated
                           : a.run.key > b.run.key;
              });
    for (const SealEntry& e : bucket) keys.push_back(e.run);
  }
  return MakeBatch(std::move(keys));
}

AccumulatedBatch FlatAccumulator::SealWithPostSort() {
  std::vector<SortedKeyRun> keys;
  keys.reserve(states_.size());
  for (const KeyState& ks : states_) {
    keys.push_back(SortedKeyRun{ks.key, ks.freq_current, ks.head});
  }
  std::sort(keys.begin(), keys.end(),
            [](const SortedKeyRun& a, const SortedKeyRun& b) {
              return a.count != b.count ? a.count > b.count : a.key < b.key;
            });
  return MakeBatch(std::move(keys));
}

}  // namespace prompt
