// The Accumulator seam: everything a caller needs to drive Alg. 1 batch
// buffering without naming a concrete implementation. Implementations are
// selected through MakeAccumulator(kind, options); the engine, the sharded
// ingest pipeline, and the partitioners all program against this interface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "model/sketch_stats.h"
#include "model/tuple.h"

namespace prompt {

/// \brief Knobs specific to the sketch (heavy-hitter) accumulator. Inert for
/// the exact implementations.
struct SketchSettings {
  /// Space-Saving counter slots. Doubles as the cap on keys promoted to
  /// exact tracking, so head state is O(capacity) by construction.
  uint32_t capacity = 4096;
  /// Hash buckets the untracked tail flows through (no per-key state; each
  /// bucket is one tuple chain). Must be >= 1.
  uint32_t tail_buckets = 64;
  /// Estimated count at which a sketch-tracked key is promoted to exact
  /// accounting. 0 = auto: max(8, 4 * estimated_tuples / avg_keys).
  uint64_t promote_threshold = 0;
  /// Count-Min cross-check width (counters per row). 0 disables the CMS;
  /// when enabled a promotion needs both sketches to clear the threshold,
  /// vetoing Space-Saving's inherited-count over-estimates.
  uint32_t cms_width = 0;
  /// Count-Min rows (only read when cms_width > 0).
  uint32_t cms_depth = 4;
};

/// \brief Tuning knobs of the buffering mechanism.
struct AccumulatorOptions {
  /// Maximum ordering (CountTree / seal-rank) updates allowed per key per
  /// batch interval (the `budget` of Alg. 1). Bounds total update work.
  uint32_t budget = 16;
  /// Estimated tuples in the interval (N_est), from the receiver's EWMA of
  /// past data rates. Used to derive the initial frequency step
  /// f = N_est / (K_avg * budget).
  uint64_t estimated_tuples = 100000;
  /// Average distinct keys over past batches (K_avg).
  uint64_t avg_keys = 1000;
  /// Heavy-hitter mode settings (used only by AccumulatorKind::kSketch).
  SketchSettings sketch;
};

/// \brief Selects the Alg. 1 accumulator implementation.
enum class AccumulatorKind {
  /// FlatMap chains + AVL CountTree: the original literal transcription of
  /// Alg. 1. Kept as the differential-testing reference.
  kLegacyChain,
  /// Robin-hood open addressing over columnar (SoA) tuple storage with a
  /// radix-partitioned seal. Bit-identical output, no per-update tree
  /// rebalancing — the default.
  kFlat,
  /// Heavy-hitter mode (DESIGN.md §17): a Space-Saving sketch decides which
  /// keys earn exact counters and chains; everything else flows through
  /// hash-partitioned tail buckets with no per-key state. Key-proportional
  /// memory is O(sketch capacity), not O(distinct keys).
  kSketch,
};

/// Canonical lowercase name ("legacy" / "flat" / "sketch") for flags and logs.
const char* AccumulatorKindName(AccumulatorKind kind);

/// Parses "flat" / "legacy" / "sketch" (also accepts "legacy_chain").
/// Returns false on unknown names, leaving *out untouched.
bool ParseAccumulatorKind(std::string_view name, AccumulatorKind* out);

/// \brief One entry of the sealed quasi-sorted key list:
/// `⟨key, count, tupleList⟩` with the tuple list referenced as a chain head
/// into the accumulator's tuple storage.
struct SortedKeyRun {
  KeyId key = 0;
  uint64_t count = 0;
  uint32_t head = kNoTuple;

  static constexpr uint32_t kNoTuple = 0xffffffffu;
};

/// \brief Non-owning view over sealed tuple storage in either layout:
/// row-major (the legacy chain arena, an array of Tuple) or columnar (the
/// flat accumulator's SoA key/ts/value arrays). Both expose the same chain
/// contract: At(i) materializes tuple i, Next(i) follows its key chain.
///
/// This replaces the raw `const std::vector<Tuple>*` that AccumulatedBatch
/// used to carry: a view is built from explicit spans at one call site, so
/// handing it a soon-to-move buffer is visible in the caller's code instead
/// of dangling silently when the vector reallocates or is destroyed. The
/// referenced storage must still outlive the view (it lives until the owning
/// accumulator's next Begin(), or until the pipeline's merge buffers are
/// rewritten).
class TupleStorageView {
 public:
  TupleStorageView() = default;

  /// Row-major storage: `rows[i]` is tuple i, `next[i]` its chain link.
  static TupleStorageView Rows(const Tuple* rows, const uint32_t* next,
                               size_t size) {
    TupleStorageView v;
    v.rows_ = rows;
    v.next_ = next;
    v.size_ = size;
    return v;
  }

  /// Columnar storage: parallel key/ts/value arrays plus the chain column.
  static TupleStorageView Columns(const KeyId* keys, const TimeMicros* ts,
                                  const double* values, const uint32_t* next,
                                  size_t size) {
    TupleStorageView v;
    v.keys_ = keys;
    v.ts_ = ts;
    v.values_ = values;
    v.next_ = next;
    v.size_ = size;
    return v;
  }

  size_t size() const { return size_; }
  bool columnar() const { return rows_ == nullptr; }

  /// Materializes tuple i (cheap: 24 bytes either way).
  Tuple At(uint32_t i) const {
    if (rows_ != nullptr) return rows_[i];
    return Tuple{ts_[i], keys_[i], values_[i]};
  }

  /// Chain successor of tuple i (SortedKeyRun::kNoTuple terminates).
  uint32_t Next(uint32_t i) const { return next_[i]; }

 private:
  const Tuple* rows_ = nullptr;
  const KeyId* keys_ = nullptr;
  const TimeMicros* ts_ = nullptr;
  const double* values_ = nullptr;
  const uint32_t* next_ = nullptr;
  size_t size_ = 0;
};

/// \brief One hash bucket of the sketch accumulator's tail: a chain of
/// tuples whose keys never earned exact state. All tuples of a given tail
/// key land in exactly one bucket (bucket = hash(key) % bucket count), so a
/// bucket can be placed on one block without splitting any tail key.
struct TailBucket {
  uint32_t head = SortedKeyRun::kNoTuple;
  uint32_t tail = SortedKeyRun::kNoTuple;
  uint64_t tuples = 0;
};

/// \brief View over a sealed batch: quasi-sorted keys (descending frequency)
/// plus access to each key's buffered tuples. Valid until the owning
/// accumulator's next Begin() (or, for merged batches, until the merge
/// buffers are rewritten).
class AccumulatedBatch {
 public:
  uint64_t num_tuples() const { return num_tuples_; }
  uint64_t num_keys() const { return keys_.size(); }

  /// Keys in (quasi-)descending frequency order; `count` is the *exact*
  /// final frequency (the hash table always has exact counts — only the
  /// ordering is approximate, coming from the budget-limited ranking).
  const std::vector<SortedKeyRun>& keys() const { return keys_; }

  /// The tuple storage the key runs chain into.
  const TupleStorageView& storage() const { return storage_; }

  /// Tail buckets (empty for exact accumulators). Tail tuples are NOT
  /// reachable through keys(); downstream consumers that iterate runs must
  /// also drain these chains.
  const std::vector<TailBucket>& tail() const { return tail_; }

  /// Sketch-mode telemetry (`stats().sketch_mode` gates interpretation).
  const SketchBatchStats& stats() const { return stats_; }

  /// Assembles a batch view over externally owned storage — an accumulator's
  /// sealed buffers, or the sharded pipeline's merged arena (per-shard chains
  /// rebased, per-shard run lists interleaved).
  static AccumulatedBatch FromMerged(uint64_t num_tuples,
                                     std::vector<SortedKeyRun> keys,
                                     TupleStorageView storage) {
    AccumulatedBatch batch;
    batch.num_tuples_ = num_tuples;
    batch.keys_ = std::move(keys);
    batch.storage_ = storage;
    return batch;
  }

  /// Sketch-mode variant: also carries the tail chains and batch telemetry.
  static AccumulatedBatch FromMergedSketch(uint64_t num_tuples,
                                           std::vector<SortedKeyRun> keys,
                                           TupleStorageView storage,
                                           std::vector<TailBucket> tail,
                                           SketchBatchStats stats) {
    AccumulatedBatch batch = FromMerged(num_tuples, std::move(keys), storage);
    batch.tail_ = std::move(tail);
    batch.stats_ = stats;
    return batch;
  }

  /// Applies f(const Tuple&) to up to `limit` tuples of the run, starting
  /// after skipping `skip` tuples of its chain. Fragmented keys consume their
  /// chain in segments: fragment i passes skip = sum of earlier fragment
  /// sizes.
  template <typename F>
  void ForEachTuple(const SortedKeyRun& run, uint64_t skip, uint64_t limit,
                    F&& f) const {
    uint32_t idx = run.head;
    while (skip > 0 && idx != SortedKeyRun::kNoTuple) {
      idx = storage_.Next(idx);
      --skip;
    }
    while (limit > 0 && idx != SortedKeyRun::kNoTuple) {
      const Tuple t = storage_.At(idx);
      f(t);
      idx = storage_.Next(idx);
      --limit;
    }
  }

  /// Applies f(const Tuple&) to every tuple chained in a tail bucket.
  template <typename F>
  void ForEachTailTuple(const TailBucket& bucket, F&& f) const {
    uint32_t idx = bucket.head;
    while (idx != SortedKeyRun::kNoTuple) {
      const Tuple t = storage_.At(idx);
      f(t);
      idx = storage_.Next(idx);
    }
  }

 private:
  uint64_t num_tuples_ = 0;
  std::vector<SortedKeyRun> keys_;
  TupleStorageView storage_;
  std::vector<TailBucket> tail_;
  SketchBatchStats stats_;
};

/// \brief Algorithm 1 batch buffering behind a stable seam.
///
/// Lifecycle: Begin(start, end) opens an interval, OnTuple() ingests, and
/// Seal() (or SealWithPostSort()) closes it, returning a view that stays
/// valid until the next Begin(). Reset() additionally releases the large
/// buffers — use it when an accumulator goes idle for a while (e.g. a
/// de-provisioned ingest shard) rather than between back-to-back batches,
/// where Begin()'s capacity reuse is the point.
class Accumulator {
 public:
  virtual ~Accumulator() = default;

  /// Implementation name, matching AccumulatorKindName().
  virtual const char* name() const = 0;

  /// Starts a new batch interval [start, end). Clears all logical state but
  /// keeps buffer capacity for reuse.
  virtual void Begin(TimeMicros start, TimeMicros end) = 0;

  /// Ingests one tuple; `t.ts` doubles as Time_Now (tuples arrive in
  /// timestamp order per the model's assumptions).
  virtual void OnTuple(const Tuple& t) = 0;

  /// Ends the interval, producing the quasi-sorted key list without an
  /// explicit sorting pass over all keys.
  virtual AccumulatedBatch Seal() = 0;

  /// Post-sort baseline (Fig. 14a): ignores the maintained ordering and
  /// exactly sorts keys by final frequency at seal time — the paper's
  /// "Post-Sort" ablation.
  virtual AccumulatedBatch SealWithPostSort() = 0;

  /// Clears state AND releases buffer capacity back to the allocator.
  virtual void Reset() = 0;

  virtual uint64_t num_tuples() const = 0;
  virtual uint64_t num_keys() const = 0;

  /// Total budgeted ordering updates in the current batch (CountTree
  /// repositionings for the legacy chain, seal-rank refreshes for the flat
  /// implementation; bounded by num_keys * budget either way).
  virtual uint64_t ordering_updates() const = 0;

  /// Bytes of buffer capacity currently held (tuple storage + hash table +
  /// ordering structures). Capacity accounting for admission/elasticity
  /// decisions; grows amortized, only Reset() gives it back.
  virtual size_t capacity_bytes() const = 0;

  /// Bytes of *key-proportional* state only: hash tables, per-key records,
  /// sketches, ordering structures — excluding tuple buffers, which are
  /// O(tuples) in every mode. This is the memory-wall axis heavy-hitter mode
  /// exists to bound: O(distinct keys) for the exact accumulators,
  /// O(sketch capacity) for kSketch.
  virtual size_t key_state_bytes() const = 0;

  /// View over the current batch's buffered tuples; the sharded pipeline
  /// reads this after Seal() to copy/rebase shard chains into the merged
  /// arena. Valid until the next Begin().
  virtual TupleStorageView storage() const = 0;

  virtual const AccumulatorOptions& options() const = 0;
  virtual void set_options(const AccumulatorOptions& o) = 0;
};

/// Factory: the only place a concrete accumulator type is named outside its
/// own translation unit.
std::unique_ptr<Accumulator> MakeAccumulator(AccumulatorKind kind,
                                             AccumulatorOptions options = {});

}  // namespace prompt
