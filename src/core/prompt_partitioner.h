// Prompt's load-balanced batch partitioning (paper §4.2, Algorithm 2):
// a heuristic for Balanced Bin Packing with Fragmentable Items (B-BPFI).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/accumulator_api.h"
#include "core/partitioner.h"

namespace prompt {

/// \brief One key-to-block placement of a partition plan. `skip`/`take`
/// select a segment of the key's buffered tuple chain, so a fragmented key
/// consumes its chain in disjoint segments across blocks.
struct PlanPlacement {
  uint32_t key_index = 0;  ///< index into AccumulatedBatch::keys()
  uint64_t skip = 0;
  uint64_t take = 0;
};

/// \brief Keys-to-blocks assignment produced by the B-BPFI heuristic.
struct PartitionPlan {
  std::vector<std::vector<PlanPlacement>> blocks;
  /// Sketch mode only: block assignment of each tail bucket (index-aligned
  /// with AccumulatedBatch::tail()). A bucket is unsplittable — all of a
  /// tail key's tuples share its bucket, so whole-bucket placement is what
  /// keeps never-promoted keys split-free with zero per-key state.
  std::vector<uint32_t> tail_bucket_block;
  uint64_t split_keys = 0;     ///< keys fragmented over 2+ blocks
  uint64_t fragments = 0;      ///< total placements after per-block merging
};

/// \brief Options of the Prompt batching-phase partitioner.
struct PromptPartitionerOptions {
  AccumulatorOptions accumulator;
  /// Which Alg. 1 implementation buffers the batch (flat columnar by
  /// default; both produce bit-identical sealed output).
  AccumulatorKind accumulator_kind = AccumulatorKind::kFlat;
  /// Use the exact post-sort at seal instead of the maintained quasi-sorted
  /// order (the Fig. 14a "Post-Sort" ablation).
  bool post_sort = false;
};

/// \brief Runs Algorithm 2 on a sealed batch: split keys larger than
/// S_cut = P_size / P_cardinality round-robin, zigzag-assign the remaining
/// keys (Best-Fit-Decreasing effect without size bookkeeping), then place
/// residuals with Best-Fit preferring key locality.
///
/// Exposed separately from the BatchPartitioner wrapper so tests and the
/// Fig. 6 ablation can exercise the plan construction in isolation.
PartitionPlan BuildPromptPlan(const AccumulatedBatch& batch,
                              uint32_t num_blocks);

/// \brief Copies tuples into DataBlocks per the plan and computes each
/// block's fragment summary (same-key placements within a block merge into
/// one fragment).
PartitionedBatch MaterializePlan(const AccumulatedBatch& batch,
                                 const PartitionPlan& plan,
                                 uint32_t num_blocks);

/// \brief The full Prompt batching-phase pipeline: frequency-aware buffering
/// (Alg. 1) + B-BPFI heuristic (Alg. 2).
class PromptPartitioner final : public BatchPartitioner {
 public:
  explicit PromptPartitioner(PromptPartitionerOptions options = {})
      : options_(options),
        accumulator_(
            MakeAccumulator(options.accumulator_kind, options.accumulator)) {}

  const char* name() const override {
    return options_.post_sort ? "Prompt+PostSort" : "Prompt";
  }

  void Begin(uint32_t num_blocks, TimeMicros start, TimeMicros end) override;
  void OnTuple(const Tuple& t) override;
  PartitionedBatch Seal(uint64_t batch_id) override;

  /// Runs Alg. 2 directly on the sharded ingest pipeline's merged
  /// quasi-sorted batch, skipping this instance's accumulator. Returns false
  /// under the post-sort ablation (which must re-sort inside Seal()).
  bool SealAccumulated(const AccumulatedBatch& accumulated, uint64_t batch_id,
                       PartitionedBatch* out) override;

  /// Accumulator observability (ordering updates etc.) for tests/ablations.
  const Accumulator& accumulator() const { return *accumulator_; }

  /// Updates rate estimates fed into the next Begin (receiver EWMAs).
  void UpdateEstimates(uint64_t estimated_tuples, uint64_t avg_keys) override;

 private:
  PromptPartitionerOptions options_;
  std::unique_ptr<Accumulator> accumulator_;
  uint32_t num_blocks_ = 1;
  TimeMicros batch_end_ = 0;
};

}  // namespace prompt
