// Heavy-hitter (sketch-bounded) implementation of Alg. 1 buffering
// (DESIGN.md §17). Exact per-key state is the memory wall at DEBS scale
// (~8M distinct keys): the HTable, per-key records, and ordering structures
// all grow O(K). This accumulator keeps that state only for the keys that
// matter to Alg. 2 — the head a Space-Saving sketch confirms as heavy — and
// lets the tail flow through hash-partitioned bucket chains with no per-key
// state at all, so key-proportional memory is O(sketch capacity).
// Callers should obtain it via MakeAccumulator() (accumulator_api.h).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/robin_hood_map.h"
#include "core/accumulator_api.h"
#include "stats/count_min.h"
#include "stats/hyperloglog.h"
#include "stats/space_saving.h"

namespace prompt {

/// \brief The bounded-memory accumulator behind `key_mode = sketch`.
///
/// Per tuple, exactly one of two paths runs:
///   head — the key already holds exact state (it was promoted): chain the
///   tuple, bump the exact count, run the same budget-limited rank state
///   machine as the flat accumulator;
///   tail — feed the Space-Saving sketch (plus the optional Count-Min
///   cross-check) and, if the key's estimate now clears the promotion
///   threshold and a counter slot is free, promote it: it leaves the sketch
///   and gets an exact record seeded with the sketch estimate as its rank
///   base. Otherwise the tuple is appended to tail bucket
///   hash(key) % tail_buckets — a bare chain, no per-key bookkeeping.
///
/// Consequences downstream documents must honor:
///   - A promoted key's run count covers only its post-promotion tuples; the
///     pre-promotion occurrences sit in its tail bucket. The key therefore
///     spans a head block and a tail block, which per-block fragment
///     summaries already surface as a split key.
///   - All tuples of a never-promoted key land in one bucket (same hash on
///     every shard), so placing a bucket on one block splits no tail key.
///   - Seal ordering ranks promoted keys by rank_base + freq_updated (the
///     sketch's estimate of the full-batch frequency), while run counts stay
///     chain-exact — Alg. 2 consumes counts as take-amounts, so they must
///     match the chains tuple-for-tuple.
class SketchAccumulator final : public Accumulator {
 public:
  explicit SketchAccumulator(AccumulatorOptions options = {});
  PROMPT_DISALLOW_COPY_AND_ASSIGN(SketchAccumulator);

  const char* name() const override;
  void Begin(TimeMicros start, TimeMicros end) override;
  void OnTuple(const Tuple& t) override;
  AccumulatedBatch Seal() override;
  AccumulatedBatch SealWithPostSort() override;
  void Reset() override;

  uint64_t num_tuples() const override { return num_tuples_; }
  /// Keys with exact state (promoted head keys) — tail keys are uncounted
  /// by design; stats().distinct_estimate carries the HLL cardinality.
  uint64_t num_keys() const override { return states_.size(); }
  uint64_t ordering_updates() const override { return ordering_updates_; }
  size_t capacity_bytes() const override;
  size_t key_state_bytes() const override;

  TupleStorageView storage() const override {
    return TupleStorageView::Columns(key_col_.data(), ts_col_.data(),
                                     value_col_.data(), next_.data(),
                                     key_col_.size());
  }

  const AccumulatorOptions& options() const override { return options_; }
  void set_options(const AccumulatorOptions& o) override { options_ = o; }

  /// The live sketch (read-only): SketchPartitioner and the pipeline's seal
  /// barrier consume it instead of building a private copy.
  const SpaceSaving& sketch() const { return *sketch_; }

  /// Effective promotion threshold for the current batch (after the auto
  /// rule resolves promote_threshold == 0).
  uint64_t promote_threshold() const { return promote_threshold_; }

  /// Folds another shard's sketch/HLL into this one (seal-barrier merge;
  /// hash-routed shards see disjoint keys).
  void MergeSketchFrom(const SketchAccumulator& other);

  /// Sketch telemetry for the current batch (also embedded in the sealed
  /// batch via AccumulatedBatch::stats()).
  SketchBatchStats ComputeStats() const;

 private:
  /// Exact state for a promoted key. Budget fields mirror FlatAccumulator's
  /// KeyState; rank_base carries the sketch estimate at promotion so seal
  /// ordering reflects full-batch frequency while counts stay chain-exact.
  struct KeyState {
    uint64_t freq_current = 0;
    uint64_t freq_updated = 0;
    uint64_t rank_base = 0;
    uint64_t f_step = 1;
    TimeMicros t_next = 0;
    KeyId key = 0;
    uint32_t budget_left = 0;
    uint32_t head = SortedKeyRun::kNoTuple;
    uint32_t tail = SortedKeyRun::kNoTuple;
  };

  void RankUpdate(KeyState& ks, TimeMicros now);
  void Promote(KeyId key, uint64_t estimate, uint32_t tuple_idx,
               TimeMicros now);
  AccumulatedBatch MakeBatch(std::vector<SortedKeyRun> keys) const;

  AccumulatorOptions options_;
  std::unique_ptr<SpaceSaving> sketch_;
  std::unique_ptr<CountMin> cms_;  ///< null when cms_width == 0
  HyperLogLog hll_;
  RobinHoodMap<uint32_t> table_;  ///< promoted key -> index into states_
  std::vector<KeyState> states_;
  std::vector<TailBucket> tail_buckets_;
  // Columnar tuple storage shared by head chains and tail buckets.
  std::vector<KeyId> key_col_;
  std::vector<TimeMicros> ts_col_;
  std::vector<double> value_col_;
  std::vector<uint32_t> next_;
  TimeMicros batch_start_ = 0;
  TimeMicros batch_end_ = 0;
  uint64_t num_tuples_ = 0;
  uint64_t head_tuples_ = 0;
  uint64_t tail_tuples_ = 0;
  uint64_t promote_threshold_ = 0;
  uint64_t initial_f_step_ = 1;
  uint64_t ordering_updates_ = 0;
};

}  // namespace prompt
