#include "core/accumulator.h"

#include <algorithm>

namespace prompt {

const char* LegacyChainAccumulator::name() const {
  return AccumulatorKindName(AccumulatorKind::kLegacyChain);
}

void LegacyChainAccumulator::Begin(TimeMicros start, TimeMicros end) {
  PROMPT_CHECK(end > start);
  batch_start_ = start;
  batch_end_ = end;
  num_tuples_ = 0;
  tree_updates_ = 0;
  table_.Clear();
  tree_.Clear();
  arena_.clear();
  next_.clear();
  // f <- N_est / (K_avg * budget): the best step under a uniform-key
  // assumption (§4.1). Each key then adapts its own step as it is observed.
  const uint64_t denom =
      std::max<uint64_t>(1, options_.avg_keys * options_.budget);
  initial_f_step_ = std::max<uint64_t>(1, options_.estimated_tuples / denom);
}

void LegacyChainAccumulator::Reset() {
  num_tuples_ = 0;
  tree_updates_ = 0;
  table_ = FlatMap<KeyState>();
  tree_.Reset();
  std::vector<Tuple>().swap(arena_);
  std::vector<uint32_t>().swap(next_);
}

size_t LegacyChainAccumulator::capacity_bytes() const {
  return arena_.capacity() * sizeof(Tuple) +
         next_.capacity() * sizeof(uint32_t) + table_.capacity_bytes() +
         tree_.capacity_bytes();
}

void LegacyChainAccumulator::TreeUpdate(KeyId key, KeyState& ks,
                                        TimeMicros now) {
  tree_.Update(key, ks.freq_updated, ks.freq_current);
  ++tree_updates_;
  ks.freq_updated = ks.freq_current;
  if (ks.budget_left > 0) --ks.budget_left;
  // f.step = (N_est / budget) * Freq_Current / N_C  (Alg. 1 line 13):
  // frequent keys need proportionally more arrivals before their next
  // repositioning, keeping per-key updates within budget.
  const uint64_t n_c = std::max<uint64_t>(1, num_tuples_);
  const uint64_t base =
      std::max<uint64_t>(1, options_.estimated_tuples /
                                std::max<uint32_t>(1, options_.budget));
  ks.f_step = std::max<uint64_t>(1, base * ks.freq_current / n_c);
  // t.step = remaining interval / remaining budget (Alg. 1 line 19).
  const TimeMicros remaining = std::max<TimeMicros>(0, batch_end_ - now);
  ks.t_next =
      now + remaining / std::max<uint32_t>(1, ks.budget_left ? ks.budget_left : 1);
}

void LegacyChainAccumulator::OnTuple(const Tuple& t) {
  const TimeMicros now = t.ts;
  ++num_tuples_;

  const uint32_t tuple_idx = static_cast<uint32_t>(arena_.size());
  arena_.push_back(t);
  next_.push_back(SortedKeyRun::kNoTuple);

  bool inserted = false;
  KeyState& ks = table_.GetOrInsert(t.key, &inserted);
  if (inserted) {
    // New key (Alg. 1 lines 24-30): chain the tuple, create a CountTree node
    // with count 1, and initialize its budget steps.
    ks.freq_current = 1;
    ks.freq_updated = 1;
    ks.budget_left = options_.budget;
    ks.f_step = initial_f_step_;
    const TimeMicros remaining = std::max<TimeMicros>(0, batch_end_ - now);
    ks.t_next = now + remaining / std::max<uint32_t>(1, options_.budget);
    ks.head = ks.tail = tuple_idx;
    tree_.Insert(t.key, 1);
    return;
  }

  // Existing key (Alg. 1 lines 4-23): chain the tuple, then decide whether
  // this arrival triggers a budgeted CountTree repositioning.
  next_[ks.tail] = tuple_idx;
  ks.tail = tuple_idx;
  ++ks.freq_current;

  if (ks.budget_left == 0) return;  // budget exhausted: count stays stale
  const uint64_t delta_freq = ks.freq_current - ks.freq_updated;
  if (delta_freq >= ks.f_step) {
    TreeUpdate(t.key, ks, now);
  } else if (now >= ks.t_next) {
    TreeUpdate(t.key, ks, now);
  }
  // else: key not yet eligible for an update (line 21).
}

AccumulatedBatch LegacyChainAccumulator::MakeBatch(
    std::vector<SortedKeyRun> keys) const {
  return AccumulatedBatch::FromMerged(num_tuples_, std::move(keys), storage());
}

AccumulatedBatch LegacyChainAccumulator::Seal() {
  std::vector<SortedKeyRun> keys;
  keys.reserve(tree_.size());
  // Reverse in-order traversal: quasi-sorted, highest tree count first. The
  // emitted counts are the exact HTable frequencies; only the *order* is
  // approximate when budgets ran out.
  tree_.ForEachDescending([this, &keys](KeyId k, uint64_t) {
    const KeyState* ks = table_.Find(k);
    PROMPT_CHECK(ks != nullptr);
    keys.push_back(SortedKeyRun{k, ks->freq_current, ks->head});
  });
  return MakeBatch(std::move(keys));
}

AccumulatedBatch LegacyChainAccumulator::SealWithPostSort() {
  std::vector<SortedKeyRun> keys;
  keys.reserve(table_.size());
  table_.ForEach([&keys](KeyId k, const KeyState& ks) {
    keys.push_back(SortedKeyRun{k, ks.freq_current, ks.head});
  });
  std::sort(keys.begin(), keys.end(),
            [](const SortedKeyRun& a, const SortedKeyRun& b) {
              return a.count != b.count ? a.count > b.count : a.key < b.key;
            });
  return MakeBatch(std::move(keys));
}

}  // namespace prompt
