// Frequency-aware micro-batch buffering (paper §4.1, Algorithm 1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "common/flat_map.h"
#include "common/macros.h"
#include "model/tuple.h"
#include "stats/count_tree.h"

namespace prompt {

/// \brief Tuning knobs of the buffering mechanism.
struct AccumulatorOptions {
  /// Maximum CountTree updates allowed per key per batch interval (the
  /// `budget` of Alg. 1). Bounds total update work to K * budget * log K.
  uint32_t budget = 16;
  /// Estimated tuples in the interval (N_est), from the receiver's EWMA of
  /// past data rates. Used to derive the initial frequency step
  /// f = N_est / (K_avg * budget).
  uint64_t estimated_tuples = 100000;
  /// Average distinct keys over past batches (K_avg).
  uint64_t avg_keys = 1000;
};

/// \brief One entry of the sealed quasi-sorted key list:
/// `⟨key, count, tupleList⟩` with the tuple list referenced as a chain head
/// into the accumulator's arena.
struct SortedKeyRun {
  KeyId key = 0;
  uint64_t count = 0;
  uint32_t head = kNoTuple;

  static constexpr uint32_t kNoTuple = 0xffffffffu;
};

/// \brief View over a sealed batch: quasi-sorted keys (descending frequency)
/// plus access to each key's buffered tuples. Valid until the owning
/// accumulator's next Begin().
class AccumulatedBatch {
 public:
  uint64_t num_tuples() const { return num_tuples_; }
  uint64_t num_keys() const { return keys_.size(); }

  /// Keys in (quasi-)descending frequency order; `count` is the *exact*
  /// final frequency (the HTable always has exact counts — only the ordering
  /// is approximate, coming from the budget-limited CountTree).
  const std::vector<SortedKeyRun>& keys() const { return keys_; }

  /// Assembles a batch view over externally owned merged storage — the
  /// output of the sharded ingest pipeline, whose k-way merge concatenates
  /// the per-shard arenas (with chain indices rebased) and interleaves the
  /// per-shard quasi-sorted run lists. The storage must outlive the view,
  /// exactly like an accumulator's arena outlives its sealed batch.
  static AccumulatedBatch FromMerged(uint64_t num_tuples,
                                     std::vector<SortedKeyRun> keys,
                                     const std::vector<Tuple>* arena,
                                     const std::vector<uint32_t>* next) {
    AccumulatedBatch batch;
    batch.num_tuples_ = num_tuples;
    batch.keys_ = std::move(keys);
    batch.arena_ = arena;
    batch.next_ = next;
    return batch;
  }

  /// Applies f(const Tuple&) to up to `limit` tuples of the run, starting
  /// after skipping `skip` tuples of its chain. Fragmented keys consume their
  /// chain in segments: fragment i passes skip = sum of earlier fragment
  /// sizes.
  template <typename F>
  void ForEachTuple(const SortedKeyRun& run, uint64_t skip, uint64_t limit,
                    F&& f) const {
    uint32_t idx = run.head;
    while (skip > 0 && idx != SortedKeyRun::kNoTuple) {
      idx = (*next_)[idx];
      --skip;
    }
    while (limit > 0 && idx != SortedKeyRun::kNoTuple) {
      f((*arena_)[idx]);
      idx = (*next_)[idx];
      --limit;
    }
  }

 private:
  friend class MicrobatchAccumulator;
  uint64_t num_tuples_ = 0;
  std::vector<SortedKeyRun> keys_;
  const std::vector<Tuple>* arena_ = nullptr;
  const std::vector<uint32_t>* next_ = nullptr;
};

/// \brief Algorithm 1: buffers a batch interval's tuples in an HTable of
/// per-key chains while progressively maintaining a CountTree of key
/// frequencies under a per-key update budget.
///
/// The HTable value tracks the exact current frequency (Freq_Current), the
/// frequency last reflected into the tree (Freq_Updated), the remaining
/// budget, and the adaptive frequency/time steps. An incoming tuple triggers
/// a tree reposition when it satisfies its key's f.step or t.step; otherwise
/// the tuple is only chained. Seal() walks the tree in descending order —
/// the quasi-sorted partitioner input — with no separate sorting pass.
class MicrobatchAccumulator {
 public:
  explicit MicrobatchAccumulator(AccumulatorOptions options = {})
      : options_(options), table_(1024) {}
  PROMPT_DISALLOW_COPY_AND_ASSIGN(MicrobatchAccumulator);

  /// Starts a new batch interval [start, end). Clears all state.
  void Begin(TimeMicros start, TimeMicros end);

  /// Ingests one tuple; `t.ts` doubles as Time_Now (tuples arrive in
  /// timestamp order per the model's assumptions).
  void Add(const Tuple& t);

  /// Ends the interval: in-order CountTree traversal producing the
  /// quasi-sorted key list. The accumulator's arena stays alive (and the
  /// returned view valid) until the next Begin().
  AccumulatedBatch Seal();

  /// Post-sort baseline (Fig. 14a): ignores the CountTree ordering and
  /// exactly sorts keys by final frequency at seal time. Costs an explicit
  /// O(K log K) sort on the critical path, which is what the paper's
  /// "Post-Sort" configuration measures.
  AccumulatedBatch SealWithPostSort();

  uint64_t num_tuples() const { return num_tuples_; }
  uint64_t num_keys() const { return table_.size(); }

  /// Total CountTree repositionings in the current batch (test/ablation
  /// observability: bounded by num_keys * budget).
  uint64_t tree_updates() const { return tree_updates_; }

  /// Raw buffered-tuple storage of the current batch. The sharded ingest
  /// pipeline reads these after Seal() to rebase each shard's chains into
  /// the merged arena; both stay valid until the next Begin().
  const std::vector<Tuple>& arena() const { return arena_; }
  const std::vector<uint32_t>& chain_next() const { return next_; }

  const AccumulatorOptions& options() const { return options_; }
  void set_options(const AccumulatorOptions& o) { options_ = o; }

 private:
  struct KeyState {
    uint64_t freq_current = 0;
    uint64_t freq_updated = 0;
    uint32_t budget_left = 0;
    uint64_t f_step = 1;
    TimeMicros t_next = 0;
    uint32_t head = SortedKeyRun::kNoTuple;
    uint32_t tail = SortedKeyRun::kNoTuple;
  };

  void TreeUpdate(KeyId key, KeyState& ks, TimeMicros now);
  AccumulatedBatch MakeBatch(std::vector<SortedKeyRun> keys) const;

  AccumulatorOptions options_;
  FlatMap<KeyState> table_;
  CountTree tree_;
  std::vector<Tuple> arena_;
  std::vector<uint32_t> next_;
  TimeMicros batch_start_ = 0;
  TimeMicros batch_end_ = 0;
  uint64_t num_tuples_ = 0;
  uint64_t initial_f_step_ = 1;
  uint64_t tree_updates_ = 0;
};

}  // namespace prompt
