// Frequency-aware micro-batch buffering (paper §4.1, Algorithm 1) — the
// legacy chain implementation. New callers should obtain an Accumulator via
// MakeAccumulator() (core/accumulator_api.h) instead of naming this class.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "common/macros.h"
#include "core/accumulator_api.h"
#include "stats/count_tree.h"

namespace prompt {

/// \brief Algorithm 1 as a literal transcription: buffers a batch interval's
/// tuples in an HTable of per-key chains while progressively maintaining a
/// CountTree (AVL of approximate frequencies) under a per-key update budget.
///
/// The HTable value tracks the exact current frequency (Freq_Current), the
/// frequency last reflected into the tree (Freq_Updated), the remaining
/// budget, and the adaptive frequency/time steps. An incoming tuple triggers
/// a tree reposition when it satisfies its key's f.step or t.step; otherwise
/// the tuple is only chained. Seal() walks the tree in descending order —
/// the quasi-sorted partitioner input — with no separate sorting pass.
///
/// Kept as the reference for differential testing against the flat columnar
/// implementation; the budget state machine here is the specification the
/// flat accumulator replicates bit-for-bit.
class LegacyChainAccumulator final : public Accumulator {
 public:
  explicit LegacyChainAccumulator(AccumulatorOptions options = {})
      : options_(options), table_(1024) {}
  PROMPT_DISALLOW_COPY_AND_ASSIGN(LegacyChainAccumulator);

  const char* name() const override;
  void Begin(TimeMicros start, TimeMicros end) override;
  void OnTuple(const Tuple& t) override;
  AccumulatedBatch Seal() override;
  AccumulatedBatch SealWithPostSort() override;
  void Reset() override;

  uint64_t num_tuples() const override { return num_tuples_; }
  uint64_t num_keys() const override { return table_.size(); }

  /// Total CountTree repositionings in the current batch (test/ablation
  /// observability: bounded by num_keys * budget).
  uint64_t ordering_updates() const override { return tree_updates_; }

  size_t capacity_bytes() const override;

  /// Key-proportional state: HTable + CountTree (the arena and chain column
  /// are O(tuples) and excluded).
  size_t key_state_bytes() const override {
    return table_.capacity_bytes() + tree_.capacity_bytes();
  }

  TupleStorageView storage() const override {
    return TupleStorageView::Rows(arena_.data(), next_.data(), arena_.size());
  }

  const AccumulatorOptions& options() const override { return options_; }
  void set_options(const AccumulatorOptions& o) override { options_ = o; }

 private:
  struct KeyState {
    uint64_t freq_current = 0;
    uint64_t freq_updated = 0;
    uint32_t budget_left = 0;
    uint64_t f_step = 1;
    TimeMicros t_next = 0;
    uint32_t head = SortedKeyRun::kNoTuple;
    uint32_t tail = SortedKeyRun::kNoTuple;
  };

  void TreeUpdate(KeyId key, KeyState& ks, TimeMicros now);
  AccumulatedBatch MakeBatch(std::vector<SortedKeyRun> keys) const;

  AccumulatorOptions options_;
  FlatMap<KeyState> table_;
  CountTree tree_;
  std::vector<Tuple> arena_;
  std::vector<uint32_t> next_;
  TimeMicros batch_start_ = 0;
  TimeMicros batch_end_ = 0;
  uint64_t num_tuples_ = 0;
  uint64_t initial_f_step_ = 1;
  uint64_t tree_updates_ = 0;
};

}  // namespace prompt
