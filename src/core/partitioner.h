// Batching-phase partitioner interface: every technique compared in the
// paper (Time-based, Shuffle, Hash, PK-2/PK-5, cAM, Prompt) implements it.
#pragma once

#include <memory>
#include <string>

#include "common/clock.h"
#include "model/batch.h"
#include "model/tuple.h"

namespace prompt {

class AccumulatedBatch;

/// \brief Produces a micro-batch's data blocks from the tuples of one batch
/// interval.
///
/// Lifecycle per batch: Begin(p, start, end) → OnTuple(t)* → Seal(id).
/// Online techniques place each tuple immediately in OnTuple; Prompt buffers
/// in the frequency-aware accumulator and partitions holistically at Seal.
/// Elasticity may change `p` between batches via Begin.
class BatchPartitioner {
 public:
  virtual ~BatchPartitioner() = default;

  /// Technique name as used in the paper's figures (e.g. "Prompt", "PK2").
  virtual const char* name() const = 0;

  /// Opens a batch interval [start, end) to be partitioned into `num_blocks`
  /// data blocks. Discards any prior batch state.
  virtual void Begin(uint32_t num_blocks, TimeMicros start,
                     TimeMicros end) = 0;

  /// Ingests one tuple of the current interval (timestamp order).
  virtual void OnTuple(const Tuple& t) = 0;

  /// Closes the batch and returns its data blocks with per-key fragment
  /// summaries and split flags populated. `partition_cost` is set to the
  /// wall time of the partitioning decision itself (Fig. 14b).
  virtual PartitionedBatch Seal(uint64_t batch_id) = 0;

  /// Receiver feedback after each batch: EWMA estimates of tuples per batch
  /// (N_est) and distinct keys (K_avg). Techniques without runtime
  /// statistics ignore it.
  virtual void UpdateEstimates(uint64_t estimated_tuples, uint64_t avg_keys) {
    (void)estimated_tuples;
    (void)avg_keys;
  }

  /// Parallel-ingest fast path: seals directly from a pre-accumulated
  /// quasi-sorted batch (the sharded pipeline's merged output), skipping
  /// OnTuple entirely. Techniques whose batching phase consumes the
  /// quasi-sorted key list (Prompt, Alg. 2) override this; the default
  /// reports "unsupported" and the caller must replay tuples via OnTuple.
  /// When supported, `out` is fully populated (blocks, ids, costs) and the
  /// current batch's OnTuple state is discarded.
  virtual bool SealAccumulated(const AccumulatedBatch& accumulated,
                               uint64_t batch_id, PartitionedBatch* out) {
    (void)accumulated;
    (void)batch_id;
    (void)out;
    return false;
  }
};

}  // namespace prompt
