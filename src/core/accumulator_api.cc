#include "core/accumulator_api.h"

#include "core/accumulator.h"
#include "core/flat_accumulator.h"
#include "core/sketch_accumulator.h"

namespace prompt {

const char* AccumulatorKindName(AccumulatorKind kind) {
  switch (kind) {
    case AccumulatorKind::kLegacyChain:
      return "legacy";
    case AccumulatorKind::kFlat:
      return "flat";
    case AccumulatorKind::kSketch:
      return "sketch";
  }
  return "unknown";
}

bool ParseAccumulatorKind(std::string_view name, AccumulatorKind* out) {
  if (name == "flat") {
    *out = AccumulatorKind::kFlat;
    return true;
  }
  if (name == "legacy" || name == "legacy_chain") {
    *out = AccumulatorKind::kLegacyChain;
    return true;
  }
  if (name == "sketch") {
    *out = AccumulatorKind::kSketch;
    return true;
  }
  return false;
}

std::unique_ptr<Accumulator> MakeAccumulator(AccumulatorKind kind,
                                             AccumulatorOptions options) {
  switch (kind) {
    case AccumulatorKind::kLegacyChain:
      return std::make_unique<LegacyChainAccumulator>(options);
    case AccumulatorKind::kFlat:
      return std::make_unique<FlatAccumulator>(options);
    case AccumulatorKind::kSketch:
      return std::make_unique<SketchAccumulator>(options);
  }
  PROMPT_CHECK_MSG(false, "unknown AccumulatorKind");
  return nullptr;
}

}  // namespace prompt
