#include "core/elastic_controller.h"

#include <algorithm>

namespace prompt {

ElasticController::ElasticController(ElasticityOptions options,
                                     uint32_t initial_map_tasks,
                                     uint32_t initial_reduce_tasks)
    : options_(options),
      map_tasks_(initial_map_tasks),
      reduce_tasks_(initial_reduce_tasks),
      rate_trend_(options.trend_lookback),
      keys_trend_(options.trend_lookback) {}

void ElasticController::BindMetrics(MetricsRegistry* registry,
                                    const MetricLabels& labels) {
  if (registry == nullptr) return;
  scale_out_total_ =
      registry->GetCounter("prompt_elastic_scale_out_total", labels);
  scale_in_total_ =
      registry->GetCounter("prompt_elastic_scale_in_total", labels);
  grace_blocked_total_ =
      registry->GetCounter("prompt_elastic_grace_blocked_total", labels);
  map_tasks_gauge_ = registry->GetGauge("prompt_elastic_map_tasks", labels);
  reduce_tasks_gauge_ =
      registry->GetGauge("prompt_elastic_reduce_tasks", labels);
  map_tasks_gauge_->Set(map_tasks_);
  reduce_tasks_gauge_->Set(reduce_tasks_);
}

void ElasticController::OnCapacityChange(uint32_t total_cores) {
  capacity_ = std::max<uint32_t>(1, total_cores);
  const uint32_t map_cap =
      std::max(options_.min_map_tasks, std::min(options_.max_map_tasks, capacity_));
  const uint32_t reduce_cap = std::max(
      options_.min_reduce_tasks, std::min(options_.max_reduce_tasks, capacity_));
  const bool shrunk = map_tasks_ > map_cap || reduce_tasks_ > reduce_cap;
  map_tasks_ = std::min(map_tasks_, map_cap);
  reduce_tasks_ = std::min(reduce_tasks_, reduce_cap);
  above_count_ = below_count_ = 0;
  if (shrunk) {
    grace_remaining_ = options_.d;
    last_direction_ = -1;
    if (scale_in_total_ != nullptr) {
      scale_in_total_->Increment();
      map_tasks_gauge_->Set(map_tasks_);
      reduce_tasks_gauge_->Set(reduce_tasks_);
    }
  }
}

ElasticityZone ElasticController::ZoneOf(double w,
                                         const ElasticityOptions& options) {
  if (w > options.threshold) return ElasticityZone::kOverloaded;
  if (w < options.threshold - options.step) {
    return ElasticityZone::kUnderUtilized;
  }
  return ElasticityZone::kStable;
}

ScaleDecision ElasticController::OnBatchCompleted(double w,
                                                  uint64_t num_tuples,
                                                  uint64_t num_keys) {
  rate_trend_.Observe(static_cast<double>(num_tuples));
  keys_trend_.Observe(static_cast<double>(num_keys));

  ScaleDecision decision;
  decision.zone = ZoneOf(w, options_);

  switch (decision.zone) {
    case ElasticityZone::kOverloaded:
      ++above_count_;
      below_count_ = 0;
      break;
    case ElasticityZone::kUnderUtilized:
      ++below_count_;
      above_count_ = 0;
      break;
    case ElasticityZone::kStable:
      above_count_ = 0;
      below_count_ = 0;
      break;
  }

  // The grace period after an action blocks *reverse* decisions only
  // (paper §6): continued scaling in the same direction stays allowed, so
  // the controller can track a sustained ramp one increment per d batches.
  const bool grace_active = grace_remaining_ > 0;
  if (grace_active) --grace_remaining_;

  if (above_count_ >= options_.d) {
    if (grace_active && last_direction_ < 0) {
      decision.in_grace_period = true;
      above_count_ = 0;
      if (grace_blocked_total_ != nullptr) grace_blocked_total_->Increment();
      return decision;
    }
    // Scale OUT. Rate increase ⇒ more Mappers; cardinality increase ⇒ more
    // Reducers; if neither statistic moved, the workload got more expensive
    // per tuple — grow both so W recovers.
    const bool rate_up = rate_trend_.Increasing();
    const bool keys_up = keys_trend_.Increasing();
    if (rate_up || (!rate_up && !keys_up)) {
      if (map_tasks_ < std::min(options_.max_map_tasks, capacity_)) {
        decision.delta_map = 1;
      }
    }
    if (keys_up || (!rate_up && !keys_up)) {
      if (reduce_tasks_ < std::min(options_.max_reduce_tasks, capacity_)) {
        decision.delta_reduce = 1;
      }
    }
    above_count_ = 0;
  } else if (below_count_ >= options_.d) {
    if (grace_active && last_direction_ > 0) {
      decision.in_grace_period = true;
      below_count_ = 0;
      if (grace_blocked_total_ != nullptr) grace_blocked_total_->Increment();
      return decision;
    }
    // Scale IN, by the same criteria: remove the task type whose driving
    // statistic decreased; if neither moved, shrink both lazily.
    const bool rate_down = rate_trend_.Decreasing();
    const bool keys_down = keys_trend_.Decreasing();
    if (rate_down || (!rate_down && !keys_down)) {
      if (map_tasks_ > options_.min_map_tasks) {
        decision.delta_map = -1;
      }
    }
    if (keys_down || (!rate_down && !keys_down)) {
      if (reduce_tasks_ > options_.min_reduce_tasks) {
        decision.delta_reduce = -1;
      }
    }
    below_count_ = 0;
  }

  if (decision.changed()) {
    map_tasks_ = static_cast<uint32_t>(
        std::clamp<int64_t>(static_cast<int64_t>(map_tasks_) + decision.delta_map,
                            options_.min_map_tasks, options_.max_map_tasks));
    reduce_tasks_ = static_cast<uint32_t>(std::clamp<int64_t>(
        static_cast<int64_t>(reduce_tasks_) + decision.delta_reduce,
        options_.min_reduce_tasks, options_.max_reduce_tasks));
    grace_remaining_ = options_.d;
    last_direction_ =
        (decision.delta_map + decision.delta_reduce) > 0 ? 1 : -1;
    if (scale_out_total_ != nullptr) {
      (last_direction_ > 0 ? scale_out_total_ : scale_in_total_)->Increment();
      map_tasks_gauge_->Set(map_tasks_);
      reduce_tasks_gauge_->Set(reduce_tasks_);
    }
  }
  return decision;
}

}  // namespace prompt
