#include "core/prompt_partitioner.h"

#include <algorithm>

#include "common/flat_map.h"

namespace prompt {

namespace {

// Tracks per-block assigned sizes and cardinalities for the residual pass.
struct BlockLoad {
  std::vector<uint64_t> sizes;
  std::vector<uint64_t> cards;

  explicit BlockLoad(uint32_t p) : sizes(p, 0), cards(p, 0) {}

  // Residual placement among blocks that fully hold `need`: prefer the block
  // with the fewest distinct keys, tie-broken Best-Fit (smallest remaining
  // capacity). Pure Best-Fit funnels every diverted residual into the same
  // nearly-full block until it tops out, which wrecks cardinality balance
  // (cost-model objective 2); biasing by cardinality spreads the +1s while
  // still respecting block capacity, so size balance is unchanged.
  // Returns -1 when no block fits entirely.
  int BestFit(uint64_t capacity, uint64_t need) const {
    int best = -1;
    uint64_t best_card = UINT64_MAX;
    uint64_t best_rem = UINT64_MAX;
    for (size_t j = 0; j < sizes.size(); ++j) {
      if (sizes[j] + need <= capacity) {
        uint64_t rem = capacity - sizes[j];
        if (cards[j] < best_card ||
            (cards[j] == best_card && rem < best_rem)) {
          best_card = cards[j];
          best_rem = rem;
          best = static_cast<int>(j);
        }
      }
    }
    return best;
  }

  // Block with the most remaining capacity (may be <= 0 remaining).
  int MostRoom(uint64_t capacity) const {
    int best = 0;
    int64_t best_rem = INT64_MIN;
    for (size_t j = 0; j < sizes.size(); ++j) {
      int64_t rem = static_cast<int64_t>(capacity) -
                    static_cast<int64_t>(sizes[j]);
      if (rem > best_rem) {
        best_rem = rem;
        best = static_cast<int>(j);
      }
    }
    return best;
  }
};

}  // namespace

PartitionPlan BuildPromptPlan(const AccumulatedBatch& batch,
                              uint32_t num_blocks) {
  PROMPT_CHECK(num_blocks >= 1);
  PartitionPlan plan;
  plan.blocks.resize(num_blocks);
  const auto& keys = batch.keys();
  const uint64_t n_c = batch.num_tuples();
  const uint64_t k = keys.size();
  if (k == 0 && batch.tail().empty()) return plan;

  // Alg. 2 lines 1-3.
  const uint64_t p_size = (n_c + num_blocks - 1) / num_blocks;
  const uint64_t p_card = std::max<uint64_t>(1, k / num_blocks);
  const uint64_t s_cut = std::max<uint64_t>(1, p_size / p_card);

  BlockLoad load(num_blocks);
  auto place = [&](uint32_t block, uint32_t key_index, uint64_t skip,
                   uint64_t take) {
    plan.blocks[block].push_back(PlanPlacement{key_index, skip, take});
    load.sizes[block] += take;
    ++load.cards[block];  // same-key merges are rare enough to ignore here
  };

  // --- Pass 1 (lines 5-9): fragment high-frequency keys. Keys arrive in
  // quasi-descending order, so the prefix holds the candidates; a stale
  // CountTree ordering may leave a large key further in, which the loop
  // below still catches by checking every key's exact count.
  struct Residual {
    uint32_t key_index;
    uint64_t remaining;
    uint32_t home_block;  // lookupLargePos(k): where its first fragment went
  };
  std::vector<Residual> residuals;
  std::vector<uint32_t> small_keys;
  small_keys.reserve(k);

  uint32_t cursor = 0;  // b_i, cycles over blocks
  for (uint32_t i = 0; i < k; ++i) {
    if (keys[i].count > s_cut) {
      place(cursor, i, 0, s_cut);
      residuals.push_back(Residual{i, keys[i].count - s_cut, cursor});
      cursor = (cursor + 1) % num_blocks;
    } else {
      small_keys.push_back(i);
    }
  }

  // --- Pass 2 (lines 10-16): zigzag (serpentine) assignment of the
  // remaining keys, one key per block per visit, reversing direction at the
  // ends. With quasi-sorted input this approximates Best-Fit-Decreasing
  // without maintaining block sizes. Start at the block after the last
  // pass-1 fragment so it catches up.
  {
    int j = static_cast<int>(cursor % num_blocks);
    int dir = 1;
    const int p = static_cast<int>(num_blocks);
    for (uint32_t idx : small_keys) {
      place(static_cast<uint32_t>(j), idx, 0, keys[idx].count);
      if (p == 1) continue;
      int next = j + dir;
      if (next >= p || next < 0) {
        dir = -dir;  // bounce: the end block receives the next key too
      } else {
        j = next;
      }
    }
  }

  // --- Tail buckets (sketch mode): place each bucket whole, largest first,
  // on the currently smallest block. Buckets are opaque (no per-key stats),
  // so this is plain LPT over bucket sizes. This runs AFTER the zigzag pass:
  // zigzag is load-oblivious, so a large head run can lump one block, and
  // with tail_buckets >> num_blocks the buckets are fine-grained enough for
  // LPT to fill the valleys around those lumps. The residual pass below then
  // sees the true per-block load including tail. Exact batches have no tail
  // and skip this entirely.
  if (!batch.tail().empty()) {
    const auto& tail = batch.tail();
    plan.tail_bucket_block.assign(tail.size(), 0);
    std::vector<uint32_t> order(tail.size());
    for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&tail](uint32_t a, uint32_t b) {
      return tail[a].tuples != tail[b].tuples ? tail[a].tuples > tail[b].tuples
                                              : a < b;
    });
    for (uint32_t bucket : order) {
      uint32_t smallest = 0;
      for (uint32_t b = 1; b < num_blocks; ++b) {
        if (load.sizes[b] < load.sizes[smallest]) smallest = b;
      }
      plan.tail_bucket_block[bucket] = smallest;
      load.sizes[smallest] += tail[bucket].tuples;
    }
  }

  // --- Pass 3 (lines 17-25): place residuals of the fragmented keys,
  // preferring the key's home block (key locality), else Best-Fit; overflow
  // spills into the roomiest blocks.
  for (const Residual& r : residuals) {
    uint64_t skip = keys[r.key_index].count - r.remaining;
    uint64_t remaining = r.remaining;

    const uint64_t home_used = load.sizes[r.home_block];
    const uint64_t home_room = home_used < p_size ? p_size - home_used : 0;
    if (remaining <= home_room) {
      place(r.home_block, r.key_index, skip, remaining);
      continue;
    }
    if (home_room > 0) {
      place(r.home_block, r.key_index, skip, home_room);
      skip += home_room;
      remaining -= home_room;
    }
    while (remaining > 0) {
      int fit = load.BestFit(p_size, remaining);
      if (fit >= 0) {
        place(static_cast<uint32_t>(fit), r.key_index, skip, remaining);
        break;
      }
      int roomy = load.MostRoom(p_size);
      uint64_t room = load.sizes[roomy] < p_size
                          ? p_size - load.sizes[roomy]
                          : 0;
      if (room == 0) {
        // Every block is at capacity (rounding tail): smallest block takes
        // the rest so sizes stay as even as possible.
        uint32_t smallest = 0;
        for (uint32_t b = 1; b < num_blocks; ++b) {
          if (load.sizes[b] < load.sizes[smallest]) smallest = b;
        }
        place(smallest, r.key_index, skip, remaining);
        break;
      }
      uint64_t take = std::min(room, remaining);
      place(static_cast<uint32_t>(roomy), r.key_index, skip, take);
      skip += take;
      remaining -= take;
    }
  }

  // Plan statistics: distinct (key, block) placements and split keys.
  FlatMap<uint32_t> blocks_of_key(k + 8);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    FlatMap<char> seen(plan.blocks[b].size() + 8);
    for (const PlanPlacement& pl : plan.blocks[b]) {
      bool inserted = false;
      seen.GetOrInsert(pl.key_index, &inserted);
      if (inserted) {
        ++plan.fragments;
        ++blocks_of_key.GetOrInsert(pl.key_index);
      }
    }
  }
  blocks_of_key.ForEach([&plan](KeyId, uint32_t n) {
    if (n > 1) ++plan.split_keys;
  });
  return plan;
}

PartitionedBatch MaterializePlan(const AccumulatedBatch& batch,
                                 const PartitionPlan& plan,
                                 uint32_t num_blocks) {
  PartitionedBatch out;
  out.num_tuples = batch.num_tuples();
  out.num_keys = batch.num_keys();
  out.sketch = batch.stats();
  if (out.sketch.sketch_mode) {
    // Exact per-key cardinality is unknown by design; carry the HLL
    // estimate so Alg. 4's data-distribution statistic stays honest.
    out.num_keys = std::max(out.num_keys, out.sketch.distinct_estimate);
  }

  // Head keys, for attributing tail-resident tuples of promoted keys: those
  // keys span a tail block and head block(s), so they MUST surface in the
  // tail block's fragment table or the reduce stage would route the same key
  // from two blocks as if it were whole (duplicate output keys). Tail-only
  // keys appear in exactly one block and legitimately stay summary-free.
  FlatMap<char> head_keys(batch.keys().size() + 8);
  if (!batch.tail().empty()) {
    for (const SortedKeyRun& run : batch.keys()) {
      head_keys.GetOrInsert(run.key) = 1;
    }
  }

  out.blocks.reserve(num_blocks);
  for (uint32_t b = 0; b < num_blocks; ++b) {
    DataBlock block(b);
    uint64_t expected = 0;
    for (const PlanPlacement& pl : plan.blocks[b]) expected += pl.take;
    block.mutable_tuples().reserve(expected);

    FlatMap<uint64_t> per_key(plan.blocks[b].size() + 8);
    for (const PlanPlacement& pl : plan.blocks[b]) {
      const SortedKeyRun& run = batch.keys()[pl.key_index];
      batch.ForEachTuple(run, pl.skip, pl.take, [&block](const Tuple& t) {
        block.Append(t);
      });
      per_key.GetOrInsert(run.key) += pl.take;
    }
    for (uint32_t t = 0; t < plan.tail_bucket_block.size(); ++t) {
      if (plan.tail_bucket_block[t] != b) continue;
      batch.ForEachTailTuple(batch.tail()[t], [&](const Tuple& tup) {
        block.Append(tup);
        if (head_keys.Find(tup.key) != nullptr) {
          ++per_key.GetOrInsert(tup.key);
        }
      });
    }
    auto& frags = block.mutable_fragments();
    frags.reserve(per_key.size());
    per_key.ForEach([&frags](KeyId key, uint64_t count) {
      frags.push_back(KeyFragment{key, count, false});
    });
    out.blocks.push_back(std::move(block));
  }
  out.ComputeSplitFlags();
  return out;
}

void PromptPartitioner::Begin(uint32_t num_blocks, TimeMicros start,
                              TimeMicros end) {
  num_blocks_ = num_blocks;
  batch_end_ = end;
  accumulator_->set_options(options_.accumulator);
  accumulator_->Begin(start, end);
}

void PromptPartitioner::OnTuple(const Tuple& t) { accumulator_->OnTuple(t); }

PartitionedBatch PromptPartitioner::Seal(uint64_t batch_id) {
  Stopwatch watch;
  AccumulatedBatch sealed = options_.post_sort
                                ? accumulator_->SealWithPostSort()
                                : accumulator_->Seal();
  PartitionPlan plan = BuildPromptPlan(sealed, num_blocks_);
  const TimeMicros decision_cost = watch.ElapsedMicros();
  PartitionedBatch out = MaterializePlan(sealed, plan, num_blocks_);
  out.batch_id = batch_id;
  out.seal_time = batch_end_;
  out.partition_cost = decision_cost;
  return out;
}

bool PromptPartitioner::SealAccumulated(const AccumulatedBatch& accumulated,
                                        uint64_t batch_id,
                                        PartitionedBatch* out) {
  // The post-sort ablation measures an exact sort over the *own* accumulator's
  // key list; the merged view's storage is externally owned, so fall back to
  // the replay path and let Seal() run SealWithPostSort there.
  if (options_.post_sort) return false;
  Stopwatch watch;
  PartitionPlan plan = BuildPromptPlan(accumulated, num_blocks_);
  const TimeMicros decision_cost = watch.ElapsedMicros();
  *out = MaterializePlan(accumulated, plan, num_blocks_);
  out->batch_id = batch_id;
  out->seal_time = batch_end_;
  out->partition_cost = decision_cost;
  return true;
}

void PromptPartitioner::UpdateEstimates(uint64_t estimated_tuples,
                                        uint64_t avg_keys) {
  options_.accumulator.estimated_tuples = std::max<uint64_t>(1, estimated_tuples);
  options_.accumulator.avg_keys = std::max<uint64_t>(1, avg_keys);
}

}  // namespace prompt
