// Latency-aware auto-scaling (paper §6, Algorithm 4): a threshold-based
// controller over W = processing_time / batch_interval with three elasticity
// zones and a rate-vs-cardinality rule for choosing what to scale.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics_registry.h"
#include "stats/ewma.h"

namespace prompt {

/// \brief Controller thresholds (paper defaults: thres = 90%, step = 10%,
/// d consecutive batches before acting, plus a grace period of d batches
/// after any action during which no reverse decision is made).
struct ElasticityOptions {
  double threshold = 0.90;  ///< L_thres: scale OUT above this W
  double step = 0.10;       ///< L_step: scale IN below threshold - step
  int d = 3;                ///< consecutive batches required to act
  uint32_t min_map_tasks = 1;
  uint32_t min_reduce_tasks = 1;
  uint32_t max_map_tasks = 256;
  uint32_t max_reduce_tasks = 256;
  /// Lookback for the rate/cardinality trend tests of Alg. 4.
  int trend_lookback = 3;
};

/// \brief Elasticity zone of the current batch (Fig. 9b). The stability
/// band is closed at BOTH endpoints: W == threshold and
/// W == threshold - step are kStable — only strictly outside the band does
/// the controller count toward an action (ZoneOf pins this; the boundary
/// tests in elastic_controller_test.cc are the executable spec).
enum class ElasticityZone {
  kUnderUtilized,  ///< Zone 1: W < threshold - step (strict), removable
  kStable,         ///< Zone 2: threshold - step <= W <= threshold
  kOverloaded,     ///< Zone 3: W > threshold (strict), must add resources
};

/// \brief Scaling decision for the next batch's execution graph.
struct ScaleDecision {
  int32_t delta_map = 0;
  int32_t delta_reduce = 0;
  ElasticityZone zone = ElasticityZone::kStable;
  bool in_grace_period = false;

  bool changed() const { return delta_map != 0 || delta_reduce != 0; }
};

/// \brief Algorithm 4. Call OnBatchCompleted once per finished batch with
/// its observed W and workload statistics; apply the returned deltas to the
/// execution graph before scheduling the next batch.
class ElasticController {
 public:
  ElasticController(ElasticityOptions options, uint32_t initial_map_tasks,
                    uint32_t initial_reduce_tasks);

  /// \param w processing_time / batch_interval of the completed batch
  /// \param num_tuples data-rate statistic from the buffering layer
  /// \param num_keys data-distribution statistic from the buffering layer
  ScaleDecision OnBatchCompleted(double w, uint64_t num_tuples,
                                 uint64_t num_keys);

  /// Fault-tolerance feed (§8 recovery): the cluster's usable core count
  /// changed (node loss or rejoin). Caps future scale-out at the new
  /// capacity and immediately scales in if the current graph no longer
  /// fits, opening a grace period so the controller doesn't fight the
  /// forced move on the next batch.
  void OnCapacityChange(uint32_t total_cores);

  /// Current scale-out ceiling from capacity feeds (UINT32_MAX until the
  /// first OnCapacityChange).
  uint32_t capacity() const { return capacity_; }

  uint32_t map_tasks() const { return map_tasks_; }
  uint32_t reduce_tasks() const { return reduce_tasks_; }

  /// Publishes scaling activity (scale-out/in counts, grace-period blocks,
  /// current task gauges) into `registry`. nullptr disables (the default).
  void BindMetrics(MetricsRegistry* registry,
                   const MetricLabels& labels = {});

  static ElasticityZone ZoneOf(double w, const ElasticityOptions& options);

 private:
  ElasticityOptions options_;
  uint32_t map_tasks_;
  uint32_t reduce_tasks_;
  uint32_t capacity_ = UINT32_MAX;  ///< cores available (OnCapacityChange)
  int above_count_ = 0;  ///< consecutive batches with W > threshold
  int below_count_ = 0;  ///< consecutive batches with W < threshold - step
  int grace_remaining_ = 0;
  int last_direction_ = 0;  ///< +1 after scale-out, -1 after scale-in
  TrendTracker rate_trend_;
  TrendTracker keys_trend_;

  // Optional instrumentation handles (all null or all set).
  Counter* scale_out_total_ = nullptr;
  Counter* scale_in_total_ = nullptr;
  Counter* grace_blocked_total_ = nullptr;
  Gauge* map_tasks_gauge_ = nullptr;
  Gauge* reduce_tasks_gauge_ = nullptr;
};

}  // namespace prompt
