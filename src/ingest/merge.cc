#include "ingest/merge.h"

namespace prompt {

namespace {

// Sentinel run ranking below every real run, so exhausted inputs always lose
// their matches. count = 0 with the maximal key loses against any real run
// under RunBefore (real counts are >= 1).
constexpr SortedKeyRun kExhausted{~KeyId{0}, 0, SortedKeyRun::kNoTuple};

}  // namespace

LoserTree::LoserTree(std::vector<std::span<const SortedKeyRun>> inputs)
    : inputs_(std::move(inputs)), cursor_(inputs_.size(), 0) {
  uint32_t k = 1;
  while (k < inputs_.size()) k <<= 1;
  k_ = k;
  for (const auto& in : inputs_) remaining_ += in.size();

  // Seed the tournament: run every leaf up its path, recording losers. The
  // standard bottom-up build plays leaves pairwise; with K small (shard
  // counts are tens, not thousands) the simpler repeated-replay build is
  // fine and obviously correct.
  tree_.assign(k_, UINT32_MAX);
  winner_ = 0;
  for (uint32_t leaf = 0; leaf < k_; ++leaf) {
    uint32_t node = (k_ + leaf) >> 1;
    uint32_t contender = leaf;
    while (node > 0) {
      if (tree_[node] == UINT32_MAX) {
        // First arrival at this match: park here, await the sibling.
        tree_[node] = contender;
        contender = UINT32_MAX;
        break;
      }
      // Play the match: winner moves up, loser stays.
      const uint32_t other = tree_[node];
      const SortedKeyRun& a = Front(contender);
      const SortedKeyRun& b = Front(other);
      if (RunBefore(b, a)) {
        tree_[node] = contender;
        contender = other;
      }
      node >>= 1;
    }
    if (contender != UINT32_MAX) winner_ = contender;
  }
}

const SortedKeyRun& LoserTree::Front(uint32_t leaf) const {
  if (leaf >= inputs_.size() || cursor_[leaf] >= inputs_[leaf].size()) {
    return kExhausted;
  }
  return inputs_[leaf][cursor_[leaf]];
}

bool LoserTree::Next(SortedKeyRun* out, uint32_t* source) {
  if (remaining_ == 0) return false;
  *out = Front(winner_);
  if (source != nullptr) *source = winner_;
  ++cursor_[winner_];
  --remaining_;
  winner_ = Replay(winner_);
  return true;
}

uint32_t LoserTree::Replay(uint32_t leaf) {
  // The advanced leaf replays its path to the root; at each internal node
  // the stored loser challenges the climbing contender.
  uint32_t contender = leaf;
  for (uint32_t node = (k_ + leaf) >> 1; node > 0; node >>= 1) {
    const uint32_t other = tree_[node];
    if (other != UINT32_MAX &&
        RunBefore(Front(other), Front(contender))) {
      tree_[node] = contender;
      contender = other;
    }
  }
  return contender;
}

std::vector<SortedKeyRun> MergeShardRuns(
    std::vector<std::span<const SortedKeyRun>> shards) {
  if (shards.size() == 1) {
    return std::vector<SortedKeyRun>(shards[0].begin(), shards[0].end());
  }
  LoserTree tree(std::move(shards));
  std::vector<SortedKeyRun> out;
  out.reserve(tree.remaining());
  SortedKeyRun run;
  while (tree.Next(&run)) out.push_back(run);
  return out;
}

}  // namespace prompt
