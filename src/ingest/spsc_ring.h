// Lock-free single-producer/single-consumer ring buffer: the per-shard
// channel of the parallel ingest pipeline. One router thread pushes, one
// shard worker pops; no other thread may touch a given ring.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace prompt {

/// \brief Bounded wait-free SPSC ring (Lamport queue with cached indices).
///
/// Capacity is rounded up to a power of two. Producer and consumer each keep
/// a cached copy of the other side's index so the common case touches only
/// one shared cache line per operation; the cache is refreshed (an acquire
/// load) only when the ring looks full/empty.
///
/// The ring itself never blocks — TryPush/TryPop fail fast and callers layer
/// their own waiting strategy (see SpinBackoff below). Close() is a
/// producer-side signal letting a draining consumer distinguish "empty for
/// now" from "empty forever".
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  PROMPT_DISALLOW_COPY_AND_ASSIGN(SpscRing);

  size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool TryPush(const T& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = item;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    *out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact when called from producer or consumer).
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }
  bool empty() const { return size() == 0; }

  /// Producer signals it will push no more items.
  void Close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  std::vector<T> slots_;
  size_t mask_ = 0;
  // Producer-owned line: its index plus its cache of the consumer's.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  // Consumer-owned line.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
  alignas(64) std::atomic<bool> closed_{false};
};

/// \brief Escalating wait strategy for the spin loops around TryPush/TryPop:
/// pure spins first (cheap when the peer is running on another core), then
/// yields, then short sleeps (essential when shards outnumber cores — a
/// spinning peer would otherwise starve the thread it is waiting for).
class SpinBackoff {
 public:
  void Pause() {
    ++spins_;
    if (spins_ < 64) {
      // busy spin
    } else if (spins_ < 256) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void Reset() { spins_ = 0; }

 private:
  uint32_t spins_ = 0;
};

}  // namespace prompt
