// Heartbeat k-way merge: combines the per-shard quasi-sorted SortedKeyRun
// lists produced by the sharded ingest pipeline into one global quasi-sorted
// list, preserving the seed's "no dedicated post-sort" property. Shards own
// disjoint key sets (tuples are routed by hash(key) % S), so the merge never
// has to combine counts — it only interleaves.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "core/accumulator_api.h"

namespace prompt {

/// \brief Descending (count, key) priority used across the merge: higher
/// count first, ties broken by smaller key (matching SealWithPostSort).
inline bool RunBefore(const SortedKeyRun& a, const SortedKeyRun& b) {
  return a.count != b.count ? a.count > b.count : a.key < b.key;
}

/// \brief Tournament loser tree over K descending run lists.
///
/// Classic replacement-selection structure: the K current front runs sit at
/// the leaves, internal nodes remember the loser of each match, and the
/// overall winner is popped in O(log K) per element — versus O(K) for naive
/// scanning or O(log K) with a binary heap's larger constant. K = 1 and
/// exhausted inputs degrade gracefully.
class LoserTree {
 public:
  explicit LoserTree(std::vector<std::span<const SortedKeyRun>> inputs);
  PROMPT_DISALLOW_COPY_AND_ASSIGN(LoserTree);

  /// Pops the next run in descending (count, key) order. `source` (optional)
  /// receives the index of the input list the run came from. Returns false
  /// when every input is exhausted.
  bool Next(SortedKeyRun* out, uint32_t* source = nullptr);

  /// Total runs remaining across all inputs.
  size_t remaining() const { return remaining_; }

 private:
  const SortedKeyRun& Front(uint32_t leaf) const;
  uint32_t Replay(uint32_t leaf);

  std::vector<std::span<const SortedKeyRun>> inputs_;
  std::vector<size_t> cursor_;   // next unread element per input
  std::vector<uint32_t> tree_;   // internal nodes: loser leaf indices
  uint32_t k_ = 0;               // leaves (padded input count)
  uint32_t winner_ = 0;
  size_t remaining_ = 0;
};

/// \brief Merges per-shard quasi-sorted run lists into one list. Counts are
/// copied bit-for-bit (they are exact HTable frequencies in every shard);
/// only the interleaving order is decided here.
std::vector<SortedKeyRun> MergeShardRuns(
    std::vector<std::span<const SortedKeyRun>> shards);

}  // namespace prompt
