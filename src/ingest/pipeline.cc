#include "ingest/pipeline.h"

#include <algorithm>
#include <span>
#include <string>

#include "common/hash.h"
#include "ingest/merge.h"

namespace prompt {

namespace {

// Per-shard Alg. 1 options: a shard sees ~1/S of the tuples and (with a
// well-mixed key hash) ~1/S of the keys, so N_est and K_avg shrink together
// and the initial frequency step f = N_est / (K_avg * budget) — and with it
// the per-key update cadence — matches the single-accumulator setting.
AccumulatorOptions ScaleForShard(AccumulatorOptions base, uint32_t shards) {
  base.estimated_tuples =
      std::max<uint64_t>(1, base.estimated_tuples / shards);
  base.avg_keys = std::max<uint64_t>(1, base.avg_keys / shards);
  return base;
}

}  // namespace

const char* KeyModeName(KeyMode mode) {
  switch (mode) {
    case KeyMode::kExact:
      return "exact";
    case KeyMode::kSketch:
      return "sketch";
  }
  return "unknown";
}

bool ParseKeyMode(std::string_view name, KeyMode* out) {
  if (name == "exact") {
    *out = KeyMode::kExact;
    return true;
  }
  if (name == "sketch") {
    *out = KeyMode::kSketch;
    return true;
  }
  return false;
}

ParallelIngestPipeline::ParallelIngestPipeline(IngestOptions options)
    : options_(options) {
  PROMPT_CHECK(options_.shards >= 1);
  PROMPT_CHECK(options_.ring_capacity >= 2);
  // Heavy-hitter mode forces the sketch accumulator on every shard; the
  // `accumulator` knob only selects among the exact implementations.
  const AccumulatorKind kind = options_.key_mode == KeyMode::kSketch
                                   ? AccumulatorKind::kSketch
                                   : options_.accumulator;
  shard_options_ =
      ScaleForShard(options_.accumulator_options, options_.shards);
  shards_.reserve(options_.shards);
  for (uint32_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        options_.ring_capacity, MakeAccumulator(kind, shard_options_)));
    shards_.back()->stats.ring_capacity = shards_.back()->ring.capacity();
  }
  for (uint32_t i = 0; i < options_.shards; ++i) {
    shards_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
}

ParallelIngestPipeline::~ParallelIngestPipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    cv_.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ParallelIngestPipeline::UpdateEstimates(uint64_t estimated_tuples,
                                             uint64_t avg_keys) {
  options_.accumulator_options.estimated_tuples =
      std::max<uint64_t>(1, estimated_tuples);
  options_.accumulator_options.avg_keys = std::max<uint64_t>(1, avg_keys);
}

void ParallelIngestPipeline::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  ring_stalls_total_ =
      registry->GetCounter("prompt_ingest_ring_stalls_total");
  seal_barrier_us_ = registry->GetHistogram("prompt_ingest_seal_barrier_us");
  merge_us_ = registry->GetHistogram("prompt_ingest_merge_us");
  for (uint32_t i = 0; i < num_shards(); ++i) {
    shards_[i]->tuples_total = registry->GetCounter(
        "prompt_ingest_tuples_total", {{"shard", std::to_string(i)}});
  }
}

void ParallelIngestPipeline::PushMsg(uint32_t shard, const IngestMsg& msg) {
  if (shards_[shard]->ring.TryPush(msg)) return;
  if (ring_stalls_total_ != nullptr) ring_stalls_total_->Increment();
  SpinBackoff backoff;
  do {
    backoff.Pause();
  } while (!shards_[shard]->ring.TryPush(msg));
}

void ParallelIngestPipeline::BeginBatch(TimeMicros start, TimeMicros end) {
  PROMPT_CHECK(!batch_open_);
  batch_start_ = start;
  batch_end_ = end;
  shard_options_ =
      ScaleForShard(options_.accumulator_options, num_shards());
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed_count_ = 0;
    copied_count_ = 0;
  }
  ++batch_epoch_;
  IngestMsg begin;
  begin.kind = IngestMsg::kBegin;
  for (uint32_t i = 0; i < num_shards(); ++i) {
    Shard& shard = *shards_[i];
    shard.routed_this_batch = 0;
    shard.stats.ring_high_water = 0;
    // Batch params and scaled options are published above; the ring push's
    // release store orders them before the worker's kBegin.
    PushMsg(i, begin);
  }
  batch_open_ = true;
  ingest_watch_.Restart();
}

void ParallelIngestPipeline::Ingest(const Tuple& t) {
  const uint32_t s =
      static_cast<uint32_t>(HashKey(t.key) % num_shards());
  Shard& shard = *shards_[s];
  IngestMsg msg;
  msg.tuple = t;
  msg.kind = IngestMsg::kTuple;
  PushMsg(s, msg);
  ++shard.routed_this_batch;
  // Occupancy is sampled, not tracked per push: reading both ring indices
  // every tuple would reintroduce the shared-line traffic the cached-index
  // ring avoids.
  if ((++shard.ring_occupancy_probe & 255u) == 0) {
    shard.stats.ring_high_water =
        std::max<uint64_t>(shard.stats.ring_high_water, shard.ring.size());
  }
}

const AccumulatedBatch& ParallelIngestPipeline::SealBatch() {
  PROMPT_CHECK(batch_open_);
  metrics_.ingest_wall = ingest_watch_.ElapsedMicros();

  IngestMsg seal;
  seal.kind = IngestMsg::kSeal;
  for (uint32_t i = 0; i < num_shards(); ++i) PushMsg(i, seal);

  // Phase 1: the seal barrier. Every worker drains its ring (FIFO order
  // guarantees it has consumed all of this batch's tuples), seals its
  // accumulator and reports in.
  Stopwatch barrier_watch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return sealed_count_ == num_shards(); });
  }
  metrics_.seal_barrier_latency = barrier_watch.ElapsedMicros();

  // Phase 2: rebase + merge. Shard chains are index-based, so concatenating
  // the arenas with per-shard offsets preserves every chain; workers copy
  // their own segments while this thread merges the run lists.
  Stopwatch merge_watch;
  uint64_t total = 0;
  for (auto& shard : shards_) {
    shard->arena_offset = total;
    total += shard->stats.tuples;
  }
  PROMPT_CHECK_MSG(total < SortedKeyRun::kNoTuple,
                   "merged batch exceeds 32-bit arena addressing");
  merged_arena_.resize(total);
  merged_next_.resize(total);
  {
    std::lock_guard<std::mutex> lock(mu_);
    copy_epoch_ = batch_epoch_;
    cv_.notify_all();
  }

  std::vector<std::span<const SortedKeyRun>> inputs;
  inputs.reserve(shards_.size());
  for (const auto& shard : shards_) {
    inputs.emplace_back(shard->sealed.keys());
  }
  LoserTree tree(std::move(inputs));
  std::vector<SortedKeyRun> runs;
  runs.reserve(tree.remaining());
  SortedKeyRun run;
  uint32_t source = 0;
  while (tree.Next(&run, &source)) {
    if (run.head != SortedKeyRun::kNoTuple) {
      run.head += static_cast<uint32_t>(shards_[source]->arena_offset);
    }
    runs.push_back(run);
  }

  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return copied_count_ == num_shards(); });
  }
  metrics_.merge_latency = merge_watch.ElapsedMicros();

  const TupleStorageView merged_view = TupleStorageView::Rows(
      merged_arena_.data(), merged_next_.data(), merged_arena_.size());
  if (options_.key_mode == KeyMode::kSketch) {
    // Stitch per-shard tail buckets: the tail hash is identical on every
    // shard, so global bucket i is the concatenation of each shard's bucket
    // i. Workers already rebased their chain links into the merged arena;
    // the router only rewrites each shard-chain terminator to point at the
    // next shard's bucket head. Runs after the copy barrier — the
    // terminators being patched were written by the workers.
    size_t num_buckets = 0;
    for (const auto& shard : shards_) {
      num_buckets = std::max(num_buckets, shard->sealed.tail().size());
    }
    std::vector<TailBucket> merged_tail(num_buckets);
    SketchBatchStats stats;
    stats.sketch_mode = true;
    for (const auto& shard : shards_) {
      const uint32_t off = static_cast<uint32_t>(shard->arena_offset);
      const auto& shard_tail = shard->sealed.tail();
      for (size_t b = 0; b < shard_tail.size(); ++b) {
        if (shard_tail[b].head == SortedKeyRun::kNoTuple) continue;
        const uint32_t head = shard_tail[b].head + off;
        const uint32_t tail = shard_tail[b].tail + off;
        if (merged_tail[b].head == SortedKeyRun::kNoTuple) {
          merged_tail[b].head = head;
        } else {
          merged_next_[merged_tail[b].tail] = head;
        }
        merged_tail[b].tail = tail;
        merged_tail[b].tuples += shard_tail[b].tuples;
      }
      // Shards see disjoint key sets, so additive fields sum exactly; the
      // untracked-frequency ceiling is the worst shard's floor.
      const SketchBatchStats& s = shard->sealed.stats();
      stats.head_tuples += s.head_tuples;
      stats.tail_tuples += s.tail_tuples;
      stats.tracked_keys += s.tracked_keys;
      stats.promoted_keys += s.promoted_keys;
      stats.distinct_estimate += s.distinct_estimate;
      stats.min_count = std::max(stats.min_count, s.min_count);
      stats.error_frac +=
          s.error_frac * static_cast<double>(s.head_tuples + s.tail_tuples);
    }
    stats.error_frac = total == 0
                           ? 0.0
                           : stats.error_frac / static_cast<double>(total);
    merged_batch_ = AccumulatedBatch::FromMergedSketch(
        total, std::move(runs), merged_view, std::move(merged_tail), stats);
  } else {
    merged_batch_ = AccumulatedBatch::FromMerged(total, std::move(runs),
                                                 merged_view);
  }
  metrics_.shards.clear();
  metrics_.shards.reserve(shards_.size());
  for (const auto& shard : shards_) metrics_.shards.push_back(shard->stats);
  metrics_.total_tuples = total;
  if (seal_barrier_us_ != nullptr) {
    seal_barrier_us_->Observe(
        static_cast<double>(metrics_.seal_barrier_latency));
    merge_us_->Observe(static_cast<double>(metrics_.merge_latency));
    for (const auto& shard : shards_) {
      shard->tuples_total->Increment(shard->stats.tuples);
    }
  }
  batch_open_ = false;
  return merged_batch_;
}

void ParallelIngestPipeline::WorkerLoop(uint32_t index) {
  Shard& shard = *shards_[index];
  SpinBackoff backoff;
  uint64_t my_epoch = 0;
  for (;;) {
    IngestMsg msg;
    if (!shard.ring.TryPop(&msg)) {
      if (stopped_) return;
      backoff.Pause();
      continue;
    }
    backoff.Reset();
    switch (msg.kind) {
      case IngestMsg::kTuple:
        shard.accumulator->OnTuple(msg.tuple);
        break;
      case IngestMsg::kBegin:
        shard.accumulator->set_options(shard_options_);
        shard.accumulator->Begin(batch_start_, batch_end_);
        ++my_epoch;
        break;
      case IngestMsg::kSeal: {
        Stopwatch seal_watch;
        shard.sealed = shard.accumulator->Seal();
        shard.stats.seal_latency = seal_watch.ElapsedMicros();
        shard.stats.tuples = shard.accumulator->num_tuples();
        shard.stats.keys = shard.accumulator->num_keys();
        {
          std::unique_lock<std::mutex> lock(mu_);
          ++sealed_count_;
          cv_.notify_all();
          cv_.wait(lock, [this, my_epoch] {
            return copy_epoch_ >= my_epoch || stopped_;
          });
          if (stopped_) return;
        }
        Stopwatch copy_watch;
        const uint32_t off = static_cast<uint32_t>(shard.arena_offset);
        // The merged arena is row-major regardless of the shard accumulator's
        // layout: Alg. 2's MaterializePlan walks chains with random access,
        // which favors whole-tuple rows, and the view keeps the copy generic
        // across kinds.
        const TupleStorageView view = shard.accumulator->storage();
        const size_t n = view.size();
        for (size_t i = 0; i < n; ++i) {
          const uint32_t idx = static_cast<uint32_t>(i);
          merged_arena_[off + i] = view.At(idx);
          const uint32_t nx = view.Next(idx);
          merged_next_[off + i] =
              nx == SortedKeyRun::kNoTuple ? SortedKeyRun::kNoTuple : nx + off;
        }
        shard.stats.copy_latency = copy_watch.ElapsedMicros();
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++copied_count_;
          cv_.notify_all();
        }
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace prompt
