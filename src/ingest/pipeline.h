// Sharded parallel ingest pipeline: multi-core frequency-aware buffering
// with a heartbeat k-way merge.
//
// The seed's batching phase is single-threaded — one thread drains the
// ingestion queue into one accumulator — so Alg. 1 throughput is capped by
// one core. Prompt's design shards cleanly: per-key accumulator state is
// independent across disjoint key sets, so tuples routed by hash(key) % S
// land in S private accumulators (any AccumulatorKind) that never share
// state. At the early-release cut-off a seal barrier stops all shards and a
// loser-tree k-way merge interleaves the per-shard quasi-sorted run lists
// into one global quasi-sorted list with exact counts, which feeds Alg. 2
// (BuildPromptPlan) unchanged.
//
// Thread roles:
//   router (caller of Ingest)  --SPSC ring-->  shard worker 0..S-1
// Each ring is strictly single-producer/single-consumer. Batch control
// (Begin/Seal/Stop) travels in-band through the rings, so a worker has
// consumed every tuple of a batch before it sees the batch's seal message —
// no separate flush protocol.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"
#include "core/accumulator_api.h"
#include "ingest/spsc_ring.h"
#include "obs/metrics_registry.h"
#include "stats/metrics.h"

namespace prompt {

/// \brief How per-key frequency state is tracked during ingest.
enum class KeyMode {
  /// Exact per-key state for every distinct key (the paper's §2.2.4
  /// position). Memory is O(distinct keys).
  kExact,
  /// Heavy-hitter mode (DESIGN.md §17): a Space-Saving sketch bounds exact
  /// state to the head; tail tuples flow through hash buckets with no
  /// per-key state. Memory is O(sketch capacity + tuples).
  kSketch,
};

/// Canonical lowercase name ("exact" / "sketch") for flags and logs.
const char* KeyModeName(KeyMode mode);

/// Parses "exact" / "sketch". Returns false on unknown names, leaving *out
/// untouched.
bool ParseKeyMode(std::string_view name, KeyMode* out);

/// \brief Batching-phase ingest configuration. This is the grouped options
/// block exposed as `EngineOptions::ingest` (and mirrored by the receiver
/// and multi-tenant engine); the pipeline itself consumes it directly.
struct IngestOptions {
  /// Shard workers (>= 1). The engine runs the accumulator inline on the
  /// router thread at 1; the pipeline itself accepts 1 and still exercises
  /// the full route/seal/merge path on a single worker thread.
  uint32_t shards = 1;
  /// Per-shard SPSC ring capacity (rounded up to a power of two). A full
  /// ring blocks the router — back-pressure toward the source.
  size_t ring_capacity = 16 * 1024;
  /// Which Alg. 1 implementation every shard runs (flat columnar by
  /// default; the exact kinds produce bit-identical sealed output).
  /// Ignored when key_mode == kSketch, which forces the sketch accumulator.
  AccumulatorKind accumulator = AccumulatorKind::kFlat;
  /// Exact vs heavy-hitter ingest. kSketch overrides `accumulator` with
  /// AccumulatorKind::kSketch on every shard; the per-shard sketches are
  /// folded into global batch telemetry at the seal barrier and the
  /// per-shard tail buckets are stitched bucket-by-bucket (same tail hash on
  /// every shard, so bucket i holds the same key slice everywhere).
  KeyMode key_mode = KeyMode::kExact;
  /// Base (whole-batch) Alg. 1 options — the budget / N_est / K_avg
  /// overrides. Each shard receives a proportionally scaled copy:
  /// estimated_tuples / S and avg_keys / S, same budget — the per-key
  /// frequency step then matches the single-accumulator setting.
  AccumulatorOptions accumulator_options;
};

/// Historical name of the pipeline's config, now the engine-wide grouping.
using ParallelIngestOptions = IngestOptions;

/// \brief S shard workers, each owning a private Accumulator (created via
/// MakeAccumulator), fed over lock-free SPSC rings; sealed per-shard runs
/// are k-way merged at the heartbeat into one AccumulatedBatch with exact
/// per-key counts.
///
/// Lifecycle per batch interval, driven by one router thread:
///   BeginBatch(start, end) -> Ingest(t)* -> SealBatch()
/// The view returned by SealBatch stays valid until the next BeginBatch,
/// mirroring an accumulator's storage lifetime contract.
class ParallelIngestPipeline {
 public:
  explicit ParallelIngestPipeline(IngestOptions options);
  ~ParallelIngestPipeline();
  PROMPT_DISALLOW_COPY_AND_ASSIGN(ParallelIngestPipeline);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// Receiver EWMA feedback (N_est, K_avg), divided across shards at the
  /// next BeginBatch.
  void UpdateEstimates(uint64_t estimated_tuples, uint64_t avg_keys);

  /// Opens a batch interval [start, end) on every shard.
  void BeginBatch(TimeMicros start, TimeMicros end);

  /// Routes one tuple to its shard (hash(key) % S). Blocks (with backoff)
  /// when the shard's ring is full.
  void Ingest(const Tuple& t);

  /// Seal barrier + merge: stops every shard, waits for their seals,
  /// rebases the per-shard tuple chains into one merged arena (workers copy
  /// their segments in parallel) while the router loser-tree-merges the
  /// quasi-sorted run lists, and returns the combined batch view.
  const AccumulatedBatch& SealBatch();

  /// Ingest observability for the batch most recently sealed.
  const IngestMetrics& last_metrics() const { return metrics_; }

  /// Publishes cumulative ingest activity (per-shard routed tuples, router
  /// stalls on full rings, seal/merge latency distributions) into
  /// `registry`. nullptr disables (the default). Call from the router thread
  /// before the first BeginBatch.
  void BindMetrics(MetricsRegistry* registry);

 private:
  struct IngestMsg {
    enum Kind : uint32_t { kTuple = 0, kBegin = 1, kSeal = 2, kStop = 3 };
    Tuple tuple{};
    uint32_t kind = kTuple;
  };

  struct Shard {
    Shard(size_t ring_capacity, std::unique_ptr<Accumulator> acc)
        : ring(ring_capacity), accumulator(std::move(acc)) {}

    SpscRing<IngestMsg> ring;
    std::thread worker;
    std::unique_ptr<Accumulator> accumulator;

    // Seal handshake (written by the worker, read by the router after the
    // barrier; the pipeline mutex orders the non-atomic fields).
    AccumulatedBatch sealed;
    uint64_t arena_offset = 0;  // set by router between barrier phases
    ShardIngestStats stats;
    uint64_t routed_this_batch = 0;  // router-side counter
    uint32_t ring_occupancy_probe = 0;
    Counter* tuples_total = nullptr;  // optional instrumentation (router-side)
  };

  void WorkerLoop(uint32_t index);
  void PushMsg(uint32_t shard, const IngestMsg& msg);

  IngestOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Batch parameters published before the kBegin message is pushed; the
  // ring's release/acquire pair orders them for the workers.
  TimeMicros batch_start_ = 0;
  TimeMicros batch_end_ = 0;
  AccumulatorOptions shard_options_;

  // Two-phase seal barrier (mutex + condvar; shards may outnumber cores, so
  // parking beats spinning).
  std::mutex mu_;
  std::condition_variable cv_;
  uint32_t sealed_count_ = 0;
  uint32_t copied_count_ = 0;
  uint64_t copy_epoch_ = 0;   // workers copy when this reaches their epoch
  uint64_t batch_epoch_ = 0;  // per-worker progress tracking

  // Merged storage backing the returned AccumulatedBatch view.
  std::vector<Tuple> merged_arena_;
  std::vector<uint32_t> merged_next_;
  AccumulatedBatch merged_batch_;

  IngestMetrics metrics_;
  Stopwatch ingest_watch_;
  bool batch_open_ = false;

  // Optional instrumentation handles (all null or all set), router-side.
  Counter* ring_stalls_total_ = nullptr;
  HistogramMetric* seal_barrier_us_ = nullptr;
  HistogramMetric* merge_us_ = nullptr;
  /// Atomic: idle workers poll it outside the mutex.
  std::atomic<bool> stopped_{false};
};

}  // namespace prompt
