#include "store/crc32c.h"

#include <array>

namespace prompt {

namespace {

// Slicing-by-4 tables for the reflected Castagnoli polynomial. Table 0 is
// the classic byte-at-a-time table; tables 1..3 fold 4 bytes per step.
struct Crc32cTables {
  std::array<std::array<uint32_t, 256>, 4> t{};

  constexpr Crc32cTables() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

constexpr Crc32cTables kTables{};

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t init) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~init;
  while (len >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[3][crc & 0xFFu] ^ kTables.t[2][(crc >> 8) & 0xFFu] ^
          kTables.t[1][(crc >> 16) & 0xFFu] ^ kTables.t[0][crc >> 24];
    p += 4;
    len -= 4;
  }
  while (len-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
  }
  return ~crc;
}

}  // namespace prompt
