// Append-only segment files for the durable block store: a fixed header
// followed by length-prefixed, CRC32C-checksummed records (the log format
// of LevelDB/Kafka-style stores, here one record per serialized batch or
// tombstone). A torn tail — the partial record a crash leaves behind — is
// detected by the length/CRC check and truncated away on open; everything
// before the first bad byte is trusted, nothing after it is.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace prompt {

/// File header: magic + format version, fsynced at creation.
inline constexpr uint32_t kSegmentMagic = 0x50534731;  // "PSG1"
inline constexpr uint32_t kSegmentVersion = 1;
inline constexpr uint64_t kSegmentHeaderBytes = 8;

/// Record framing: [payload length u32][masked crc32c(payload) u32][payload].
inline constexpr uint64_t kRecordHeaderBytes = 8;

/// Records larger than this fail the sanity check during a scan (a corrupt
/// length prefix must not drive a multi-gigabyte read).
inline constexpr uint64_t kMaxRecordBytes = 1ull << 30;

/// \brief One valid record found by ScanSegmentFile.
struct SegmentRecord {
  uint64_t offset = 0;  ///< file offset of the record header
  std::string payload;
};

/// \brief Result of scanning one segment file.
struct SegmentScan {
  std::vector<SegmentRecord> records;
  /// Offset of the first byte that is NOT part of a valid record — the
  /// truncation point a recovery applies. Equals the file size when the
  /// segment is clean.
  uint64_t valid_bytes = 0;
  uint64_t file_bytes = 0;
  /// Bytes past valid_bytes (a torn or corrupt tail; 0 when clean).
  uint64_t torn_bytes = 0;
  /// 1 when a partial/corrupt record was found and dropped, else 0. (All
  /// records after the first bad one are unreachable, so at most one
  /// *detected* drop per segment.)
  uint32_t torn_records = 0;
  bool header_ok = false;
};

/// \brief Reads a segment file and validates every record in order,
/// stopping at the first bad length or CRC. Never fabricates: a record is
/// returned only when its checksum verifies. IO errors (unreadable file)
/// fail the Result; corruption does not — it is reported in the scan.
Result<SegmentScan> ScanSegmentFile(const std::string& path);

/// \brief Truncates `path` to `size` bytes and fsyncs the result (torn-tail
/// repair and crash simulation both reduce files, never extend them; the
/// fsync keeps the repair durable across a machine crash).
Status TruncateFile(const std::string& path, uint64_t size);

/// \brief fsyncs a directory, making recent file creations/deletions inside
/// it durable (a synced record in an unlinked-by-crash file is still lost).
Status SyncDir(const std::string& dir);

/// \brief Appender over one segment file with an explicit fsync watermark.
///
/// Append() buffers nothing — every record is write()n to the file — but
/// only Sync() advances the *durability* watermark. SimulateCrash() on the
/// owning store truncates to that watermark: the worst-case machine-crash
/// outcome where nothing unsynced survived.
class SegmentWriter {
 public:
  /// Creates the file, writes the header and fsyncs it (one fsync per
  /// segment lifetime regardless of policy; creation is a metadata event).
  static Result<std::unique_ptr<SegmentWriter>> Create(const std::string& path);

  /// Reopens an existing (scanned) segment for further appends. The first
  /// `size` bytes are assumed valid AND durable — recovery fsyncs any
  /// tail repair (TruncateFile), and bytes that survived the crash are by
  /// definition on disk — so reopened content counts as synced.
  static Result<std::unique_ptr<SegmentWriter>> OpenExisting(
      const std::string& path, uint64_t size);

  ~SegmentWriter();
  PROMPT_DISALLOW_COPY_AND_ASSIGN(SegmentWriter);

  /// Appends one framed record; returns the record's file offset.
  Result<uint64_t> Append(const std::string& payload);

  /// fsyncs the file and advances the durability watermark to size().
  Status Sync();

  /// Truncates the file to `size` and clamps the watermark (crash
  /// simulation only; normal operation is append-only).
  Status TruncateTo(uint64_t size);

  uint64_t size() const { return size_; }
  uint64_t synced_bytes() const { return synced_bytes_; }
  const std::string& path() const { return path_; }

 private:
  SegmentWriter(std::string path, int fd, uint64_t size, uint64_t synced);

  std::string path_;
  int fd_ = -1;
  uint64_t size_ = 0;
  uint64_t synced_bytes_ = 0;
};

}  // namespace prompt
