#include "store/segment.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "store/crc32c.h"

namespace prompt {

namespace {

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

Status WriteAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("segment write: ") +
                             std::strerror(errno));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<SegmentScan> ScanSegmentFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open segment " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IOError("cannot read segment " + path);

  SegmentScan scan;
  scan.file_bytes = bytes.size();
  if (bytes.size() < kSegmentHeaderBytes ||
      ReadU32(bytes.data()) != kSegmentMagic ||
      ReadU32(bytes.data() + 4) != kSegmentVersion) {
    // No trustworthy header: nothing in the file can be believed.
    scan.header_ok = false;
    scan.valid_bytes = 0;
    scan.torn_bytes = bytes.size();
    scan.torn_records = bytes.empty() ? 0 : 1;
    return scan;
  }
  scan.header_ok = true;

  uint64_t off = kSegmentHeaderBytes;
  while (off < bytes.size()) {
    if (off + kRecordHeaderBytes > bytes.size()) break;  // partial header
    const uint64_t len = ReadU32(bytes.data() + off);
    const uint32_t stored = ReadU32(bytes.data() + off + 4);
    if (len > kMaxRecordBytes || off + kRecordHeaderBytes + len > bytes.size()) {
      break;  // insane or partial payload — a torn write
    }
    const char* payload = bytes.data() + off + kRecordHeaderBytes;
    if (MaskCrc32c(Crc32c(payload, len)) != stored) break;  // bit rot / tear
    SegmentRecord record;
    record.offset = off;
    record.payload.assign(payload, len);
    scan.records.push_back(std::move(record));
    off += kRecordHeaderBytes + len;
  }
  scan.valid_bytes = off;
  scan.torn_bytes = bytes.size() - off;
  scan.torn_records = scan.torn_bytes > 0 ? 1 : 0;
  return scan;
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::IOError("truncate " + path + ": " + std::strerror(errno));
  }
  // The repair must itself be durable: a machine crash right after recovery
  // must not bring the torn tail back behind a reopened writer's back.
  const int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) {
    return Status::IOError("reopen for fsync " + path + ": " +
                           std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IOError("open dir " + dir + ": " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync dir " + dir + ": " + std::strerror(errno));
  }
  return Status::OK();
}

SegmentWriter::SegmentWriter(std::string path, int fd, uint64_t size,
                             uint64_t synced)
    : path_(std::move(path)), fd_(fd), size_(size), synced_bytes_(synced) {}

SegmentWriter::~SegmentWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<SegmentWriter>> SegmentWriter::Create(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("create segment " + path + ": " +
                           std::strerror(errno));
  }
  std::string header;
  PutU32(kSegmentMagic, &header);
  PutU32(kSegmentVersion, &header);
  if (Status st = WriteAll(fd, header.data(), header.size()); !st.ok()) {
    ::close(fd);
    return st;
  }
  if (::fsync(fd) != 0) {
    Status st = Status::IOError("fsync segment header " + path + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  return std::unique_ptr<SegmentWriter>(new SegmentWriter(
      path, fd, kSegmentHeaderBytes, kSegmentHeaderBytes));
}

Result<std::unique_ptr<SegmentWriter>> SegmentWriter::OpenExisting(
    const std::string& path, uint64_t size) {
  const int fd = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("open segment " + path + ": " +
                           std::strerror(errno));
  }
  if (::lseek(fd, static_cast<off_t>(size), SEEK_SET) < 0) {
    Status st = Status::IOError("seek segment " + path + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  return std::unique_ptr<SegmentWriter>(
      new SegmentWriter(path, fd, size, size));
}

Result<uint64_t> SegmentWriter::Append(const std::string& payload) {
  if (payload.size() > kMaxRecordBytes) {
    return Status::Invalid("segment record exceeds the size bound");
  }
  std::string frame;
  frame.reserve(kRecordHeaderBytes + payload.size());
  PutU32(static_cast<uint32_t>(payload.size()), &frame);
  PutU32(MaskCrc32c(Crc32c(payload.data(), payload.size())), &frame);
  frame += payload;
  PROMPT_RETURN_NOT_OK(WriteAll(fd_, frame.data(), frame.size()));
  const uint64_t offset = size_;
  size_ += frame.size();
  return offset;
}

Status SegmentWriter::Sync() {
  if (synced_bytes_ == size_) return Status::OK();
  if (::fsync(fd_) != 0) {
    return Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
  }
  synced_bytes_ = size_;
  return Status::OK();
}

Status SegmentWriter::TruncateTo(uint64_t size) {
  if (size > size_) return Status::Invalid("segment truncate cannot extend");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError("ftruncate " + path_ + ": " + std::strerror(errno));
  }
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    return Status::IOError("seek " + path_ + ": " + std::strerror(errno));
  }
  size_ = size;
  synced_bytes_ = std::min(synced_bytes_, size);
  return Status::OK();
}

}  // namespace prompt
