#include "store/block_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>

#include "common/logging.h"
#include "store/crc32c.h"

namespace prompt {

namespace {

constexpr uint8_t kRecordPut = 1;
constexpr uint8_t kRecordTombstone = 2;
/// kind u8 + owner u32 + batch_id u64.
constexpr size_t kPayloadHeaderBytes = 13;

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}
void PutU64(uint64_t v, std::string* out) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// Builds the record payload framing a put/tombstone.
std::string MakePayload(uint8_t kind, uint32_t owner, uint64_t batch_id,
                        const std::string& body) {
  std::string payload;
  payload.reserve(kPayloadHeaderBytes + body.size());
  payload.push_back(static_cast<char>(kind));
  PutU32(owner, &payload);
  PutU64(batch_id, &payload);
  payload += body;
  return payload;
}

struct ParsedPayload {
  uint8_t kind = 0;
  uint32_t owner = 0;
  uint64_t batch_id = 0;
  size_t body_offset = kPayloadHeaderBytes;
};

bool ParsePayload(const std::string& payload, ParsedPayload* out) {
  if (payload.size() < kPayloadHeaderBytes) return false;
  out->kind = static_cast<uint8_t>(payload[0]);
  std::memcpy(&out->owner, payload.data() + 1, 4);
  std::memcpy(&out->batch_id, payload.data() + 5, 8);
  return out->kind == kRecordPut || out->kind == kRecordTombstone;
}

/// Strictly parses "seg-<digits>.log" — the full name, any digit count —
/// so stray files (seg-000001.log.bak, editor droppings) are never taken
/// for segments and ids past 6 digits keep working.
bool ParseSegmentFilename(const std::string& name, uint64_t* id) {
  constexpr std::string_view kPrefix = "seg-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() < kPrefix.size() + 1 + kSuffix.size()) return false;
  if (name.compare(0, kPrefix.size(), kPrefix) != 0) return false;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
      0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
  }
  *id = value;
  return true;
}

}  // namespace

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever: return "never";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kAlways: return "always";
  }
  return "?";
}

Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name) {
  if (name == "never") return FsyncPolicy::kNever;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "always") return FsyncPolicy::kAlways;
  return Status::Invalid("unknown fsync policy '" + name +
                         "' (want never|batch|always)");
}

DurableBlockStore::DurableBlockStore(StoreOptions options)
    : options_(std::move(options)) {}

DurableBlockStore::~DurableBlockStore() = default;

std::string DurableBlockStore::SegmentPath(uint64_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.log",
                static_cast<unsigned long long>(id));
  return options_.dir + "/" + name;
}

Result<std::unique_ptr<DurableBlockStore>> DurableBlockStore::Open(
    StoreOptions options) {
  if (!options.enabled()) {
    return Status::Invalid("store directory not configured");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("create store dir " + options.dir + ": " +
                           ec.message());
  }
  auto store =
      std::unique_ptr<DurableBlockStore>(new DurableBlockStore(options));
  PROMPT_RETURN_NOT_OK(store->ScanExisting());
  return store;
}

Status DurableBlockStore::ScanExisting() {
  // Segment ids are their filenames. Keep each entry's own path (never
  // re-derive it from the id: a hand-renamed but still well-formed name
  // like seg-1.log must be read from where it actually is).
  std::vector<std::pair<uint64_t, std::string>> found;
  for (const auto& entry : std::filesystem::directory_iterator(options_.dir)) {
    uint64_t id = 0;
    if (ParseSegmentFilename(entry.path().filename().string(), &id)) {
      found.emplace_back(id, entry.path().string());
    }
  }
  std::sort(found.begin(), found.end());

  for (const auto& [id, path] : found) {
    if (segments_.count(id) > 0) {
      // Two well-formed names for one id (seg-1.log vs seg-000001.log):
      // trust the first, never index records whose offsets belong to a
      // file the id no longer names.
      PROMPT_LOG(kWarn) << "store: duplicate segment id " << id << " at "
                        << path << "; ignoring the file";
      continue;
    }
    PROMPT_ASSIGN_OR_RETURN(SegmentScan scan, ScanSegmentFile(path));
    ++recovery_.segments_scanned;
    recovery_.torn_records += scan.torn_records;
    recovery_.torn_bytes += scan.torn_bytes;
    if (!scan.header_ok) {
      // Nothing in the file can be trusted; drop it rather than let a
      // future append chase a corrupt header.
      PROMPT_LOG(kWarn) << "store: segment " << path
                        << " has a corrupt header; removing";
      std::filesystem::remove(path);
      SyncDirBestEffort();
      continue;
    }
    if (scan.torn_bytes > 0) {
      // Truncate at the first bad CRC/length — the torn-tail repair rule.
      PROMPT_LOG(kWarn) << "store: truncating torn tail of " << path << " ("
                        << scan.torn_bytes << " bytes past offset "
                        << scan.valid_bytes << ")";
      PROMPT_RETURN_NOT_OK(TruncateFile(path, scan.valid_bytes));
    }
    Segment segment;
    segment.id = id;
    segment.path = path;
    segment.bytes = scan.valid_bytes;
    next_segment_id_ = std::max(next_segment_id_, id + 1);

    for (SegmentRecord& record : scan.records) {
      ParsedPayload parsed;
      if (!ParsePayload(record.payload, &parsed)) {
        // Checksum-valid but unparseable means a format bug, not bit rot;
        // be conservative and skip (never fabricate a batch from it).
        PROMPT_LOG(kWarn) << "store: skipping unparseable record in " << path;
        continue;
      }
      const auto key = std::make_pair(parsed.owner, parsed.batch_id);
      if (parsed.kind == kRecordPut) {
        Location loc;
        loc.segment_id = id;
        loc.offset = record.offset;
        loc.payload_bytes = record.payload.size();
        index_[key] = loc;
      } else {
        ++recovery_.tombstones;
        index_.erase(key);
      }
    }
    segments_.emplace(id, std::move(segment));
  }

  // Live accounting from the final (post-tombstone) index.
  for (const auto& [key, loc] : index_) {
    auto it = segments_.find(loc.segment_id);
    PROMPT_CHECK(it != segments_.end());
    ++it->second.live_puts;
    it->second.live_put_bytes += loc.payload_bytes - kPayloadHeaderBytes;
    live_bytes_ += loc.payload_bytes - kPayloadHeaderBytes;
  }
  recovery_.batches_recovered = index_.size();

  // Reopen the newest segment for appends; everything valid in it was
  // either fsynced before the shutdown or survived the crash anyway, and
  // the torn-tail repair truncated the rest — treat it as durable.
  if (!segments_.empty()) {
    Segment& last = segments_.rbegin()->second;
    PROMPT_ASSIGN_OR_RETURN(last.writer,
                            SegmentWriter::OpenExisting(last.path, last.bytes));
  }
  CollectPrefix();
  return Status::OK();
}

DurableBlockStore::Segment* DurableBlockStore::ActiveSegment() {
  if (!segments_.empty()) {
    Segment& last = segments_.rbegin()->second;
    if (last.writer != nullptr && last.bytes < options_.segment_bytes) {
      return &last;
    }
    if (last.writer != nullptr) {
      // Seal: one final fsync so only the active segment ever has an
      // unsynced tail, then drop the fd.
      if (Status st = last.writer->Sync(); !st.ok()) {
        PROMPT_LOG(kWarn) << "store: seal fsync failed: " << st.ToString();
      }
      last.writer.reset();
    }
  }
  const uint64_t id = next_segment_id_++;
  Segment segment;
  segment.id = id;
  segment.path = SegmentPath(id);
  auto writer = SegmentWriter::Create(segment.path);
  if (!writer.ok()) {
    PROMPT_LOG(kWarn) << "store: cannot create segment " << segment.path
                      << ": " << writer.status().ToString();
    return nullptr;
  }
  segment.writer = std::move(writer).ValueUnsafe();
  segment.bytes = segment.writer->size();
  // The new file's directory entry must be durable before any record in it
  // counts as synced — an fsynced record in an unlinked file is still lost.
  if (Status st = SyncDir(options_.dir); !st.ok()) {
    PROMPT_LOG(kWarn) << "store: cannot sync dir after creating "
                      << segment.path << ": " << st.ToString();
    std::filesystem::remove(segment.path);
    return nullptr;
  }
  if (segments_created_total_ != nullptr) segments_created_total_->Increment();
  return &segments_.emplace(id, std::move(segment)).first->second;
}

Status DurableBlockStore::AppendRecord(const std::string& payload,
                                       Location* loc) {
  Segment* segment = ActiveSegment();
  if (segment == nullptr) {
    return Status::IOError("store: no writable segment");
  }
  PROMPT_ASSIGN_OR_RETURN(uint64_t offset, segment->writer->Append(payload));
  segment->bytes = segment->writer->size();
  if (options_.fsync == FsyncPolicy::kAlways) {
    PROMPT_RETURN_NOT_OK(segment->writer->Sync());
    if (syncs_total_ != nullptr) syncs_total_->Increment();
  }
  loc->segment_id = segment->id;
  loc->offset = offset;
  loc->payload_bytes = payload.size();
  if (appends_total_ != nullptr) {
    appends_total_->Increment();
    append_bytes_total_->Increment(kRecordHeaderBytes + payload.size());
    disk_bytes_gauge_->Set(static_cast<double>(disk_bytes()));
  }
  return Status::OK();
}

Status DurableBlockStore::Put(uint32_t owner, uint64_t batch_id,
                              const std::string& encoded) {
  Stopwatch watch;
  Location loc;
  PROMPT_RETURN_NOT_OK(AppendRecord(
      MakePayload(kRecordPut, owner, batch_id, encoded), &loc));
  const auto key = std::make_pair(owner, batch_id);
  if (auto it = index_.find(key); it != index_.end()) {
    // Overwrite (a re-put): the old record becomes dead weight.
    Segment& old = segments_.at(it->second.segment_id);
    --old.live_puts;
    old.live_put_bytes -= it->second.payload_bytes - kPayloadHeaderBytes;
    live_bytes_ -= it->second.payload_bytes - kPayloadHeaderBytes;
  }
  index_[key] = loc;
  Segment& segment = segments_.at(loc.segment_id);
  ++segment.live_puts;
  segment.live_put_bytes += encoded.size();
  live_bytes_ += encoded.size();
  last_append_micros_ = watch.ElapsedMicros();
  if (live_batches_gauge_ != nullptr) {
    live_batches_gauge_->Set(static_cast<double>(index_.size()));
  }
  // Compaction's own re-appends skip retention: both generations are on
  // disk mid-rewrite, so the byte cap would spuriously trigger (and then
  // recurse through Compact → Put → here forever).
  return compacting_ ? Status::OK() : EnforceRetention();
}

Status DurableBlockStore::EnforceRetention() {
  if (options_.retain_batches > 0) {
    // Per owner, expire the oldest ids beyond the count cap. The index is
    // ordered by (owner, batch_id), so each owner's range is ascending.
    std::vector<std::pair<uint32_t, uint64_t>> expired;
    for (auto it = index_.begin(); it != index_.end();) {
      const uint32_t owner = it->first.first;
      uint64_t owned = 0;
      for (auto scan = it; scan != index_.end() && scan->first.first == owner;
           ++scan) {
        ++owned;
      }
      for (; it != index_.end() && it->first.first == owner; ++it) {
        if (owned <= options_.retain_batches) break;
        expired.push_back(it->first);
        --owned;
      }
      while (it != index_.end() && it->first.first == owner) ++it;
    }
    for (const auto& [owner, batch_id] : expired) {
      PROMPT_RETURN_NOT_OK(Evict(owner, batch_id));
    }
  }
  if (options_.retain_bytes > 0 && disk_bytes() > options_.retain_bytes) {
    // Dead weight first: a compaction may fit the cap without touching any
    // live batch.
    PROMPT_RETURN_NOT_OK(Compact());
    while (disk_bytes() > options_.retain_bytes && index_.size() > 1) {
      // Expire the oldest-appended live batch (smallest log position).
      auto oldest = index_.begin();
      for (auto it = index_.begin(); it != index_.end(); ++it) {
        if (it->second.segment_id < oldest->second.segment_id ||
            (it->second.segment_id == oldest->second.segment_id &&
             it->second.offset < oldest->second.offset)) {
          oldest = it;
        }
      }
      const auto key = oldest->first;
      PROMPT_RETURN_NOT_OK(Evict(key.first, key.second));
    }
  }
  return Status::OK();
}

Result<std::string> DurableBlockStore::Get(uint32_t owner,
                                           uint64_t batch_id) const {
  auto it = index_.find(std::make_pair(owner, batch_id));
  if (it == index_.end()) {
    return Status::KeyError("batch " + std::to_string(batch_id) +
                            " (owner " + std::to_string(owner) +
                            ") not in the durable store");
  }
  const Location& loc = it->second;
  const auto seg = segments_.find(loc.segment_id);
  PROMPT_CHECK(seg != segments_.end());
  std::ifstream in(seg->second.path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + seg->second.path);
  in.seekg(static_cast<std::streamoff>(loc.offset));
  std::string frame(kRecordHeaderBytes + loc.payload_bytes, '\0');
  in.read(frame.data(), static_cast<std::streamsize>(frame.size()));
  if (in.gcount() != static_cast<std::streamsize>(frame.size())) {
    return Status::IOError("short read from " + seg->second.path);
  }
  uint32_t stored = 0;
  std::memcpy(&stored, frame.data() + 4, 4);
  if (MaskCrc32c(Crc32c(frame.data() + kRecordHeaderBytes,
                        loc.payload_bytes)) != stored) {
    return Status::IOError("record checksum mismatch in " + seg->second.path);
  }
  return frame.substr(kRecordHeaderBytes + kPayloadHeaderBytes);
}

bool DurableBlockStore::Contains(uint32_t owner, uint64_t batch_id) const {
  return index_.count(std::make_pair(owner, batch_id)) > 0;
}

Status DurableBlockStore::Evict(uint32_t owner, uint64_t batch_id) {
  const auto key = std::make_pair(owner, batch_id);
  auto it = index_.find(key);
  if (it == index_.end()) return Status::OK();
  Location tombstone_loc;
  PROMPT_RETURN_NOT_OK(AppendRecord(
      MakePayload(kRecordTombstone, owner, batch_id, ""), &tombstone_loc));
  Segment& segment = segments_.at(it->second.segment_id);
  --segment.live_puts;
  segment.live_put_bytes -= it->second.payload_bytes - kPayloadHeaderBytes;
  live_bytes_ -= it->second.payload_bytes - kPayloadHeaderBytes;
  index_.erase(it);
  if (evictions_total_ != nullptr) {
    evictions_total_->Increment();
    live_batches_gauge_->Set(static_cast<double>(index_.size()));
  }
  CollectPrefix();
  // Interior holes (non-FIFO eviction) escape prefix GC; fall back to a
  // full rewrite once dead weight dominates.
  const uint64_t on_disk = disk_bytes();
  if (on_disk > 2 * options_.segment_bytes &&
      static_cast<double>(live_bytes_) <
          options_.compact_live_frac * static_cast<double>(on_disk)) {
    PROMPT_RETURN_NOT_OK(Compact());
  }
  return Status::OK();
}

std::vector<uint64_t> DurableBlockStore::LiveBatches(uint32_t owner) const {
  std::vector<uint64_t> ids;
  // The index is ordered by (owner, batch_id), so this range is ascending.
  for (auto it = index_.lower_bound(std::make_pair(owner, uint64_t{0}));
       it != index_.end() && it->first.first == owner; ++it) {
    ids.push_back(it->first.second);
  }
  return ids;
}

Status DurableBlockStore::Sync() {
  if (segments_.empty()) return Status::OK();
  Segment& last = segments_.rbegin()->second;
  if (last.writer == nullptr) return Status::OK();
  PROMPT_RETURN_NOT_OK(last.writer->Sync());
  if (syncs_total_ != nullptr) syncs_total_->Increment();
  return Status::OK();
}

void DurableBlockStore::CollectPrefix() {
  // Deleting from the front is the only single-segment GC that can never
  // resurrect: a tombstone always lands at or after its put, so a prefix
  // segment's tombstones only ever target already-deleted segments.
  bool removed = false;
  while (segments_.size() > 1) {
    auto front = segments_.begin();
    if (front->second.live_puts > 0) break;
    if (front->second.writer != nullptr) break;  // never delete the active one
    std::filesystem::remove(front->second.path);
    removed = true;
    if (segments_deleted_total_ != nullptr) {
      segments_deleted_total_->Increment();
      disk_bytes_gauge_->Set(static_cast<double>(disk_bytes()));
    }
    segments_.erase(front);
  }
  if (removed) SyncDirBestEffort();
}

void DurableBlockStore::SyncDirBestEffort() {
  // Deletion durability is advisory: a removed segment reappearing after a
  // machine crash replays like a crash before the delete — safe under
  // last-write-wins — so a failed directory sync only costs disk space.
  if (Status st = SyncDir(options_.dir); !st.ok()) {
    PROMPT_LOG(kWarn) << "store: dir sync failed: " << st.ToString();
  }
}

Status DurableBlockStore::Compact() {
  // Full rewrite, crash-atomic: copy every live put into *fresh* segments,
  // fsync the new generation, and only then delete the old one. Recovery
  // replays segments in id order with last-write-wins, so a crash that
  // leaves both generations on disk is harmless — the re-appended copies
  // have higher segment ids and shadow the originals. Partial (per-segment)
  // rewrites would have to reason about which tombstones are still
  // load-bearing; a full rewrite leaves none behind by construction.
  std::vector<std::pair<std::pair<uint32_t, uint64_t>, std::string>> live;
  live.reserve(index_.size());
  for (const auto& [key, loc] : index_) {
    PROMPT_ASSIGN_OR_RETURN(std::string body, Get(key.first, key.second));
    live.emplace_back(key, std::move(body));
  }
  std::vector<uint64_t> old_ids;
  old_ids.reserve(segments_.size());
  for (auto& [id, segment] : segments_) {
    old_ids.push_back(id);
    // Seal (no sync needed: this generation is about to be deleted) so the
    // re-appends below roll into brand-new segments.
    segment.writer.reset();
  }
  compacting_ = true;
  for (auto& [key, body] : live) {
    const Status put = Put(key.first, key.second, body);
    if (!put.ok()) {
      compacting_ = false;
      return put;
    }
  }
  compacting_ = false;
  // The new generation must be durable before the old one disappears:
  // sealed new segments were fsynced when they rolled, this covers the
  // active one.
  PROMPT_RETURN_NOT_OK(Sync());
  // Delete old segments front-first (ascending id), the same
  // never-resurrect order CollectPrefix relies on: a tombstone always
  // lands at or after its put, so a crash mid-loop can only ever have
  // removed puts before their tombstones.
  for (uint64_t id : old_ids) {
    auto it = segments_.find(id);
    PROMPT_CHECK(it != segments_.end());
    PROMPT_CHECK(it->second.live_puts == 0);  // every live put moved above
    std::filesystem::remove(it->second.path);
    if (segments_deleted_total_ != nullptr) {
      segments_deleted_total_->Increment();
    }
    segments_.erase(it);
  }
  SyncDirBestEffort();
  if (disk_bytes_gauge_ != nullptr) {
    disk_bytes_gauge_->Set(static_cast<double>(disk_bytes()));
  }
  return Status::OK();
}

Status DurableBlockStore::SimulateCrash(bool tear_tail) {
  for (auto& [id, segment] : segments_) {
    if (segment.writer == nullptr) continue;  // sealed segments are synced
    const uint64_t synced = segment.writer->synced_bytes();
    const uint64_t size = segment.writer->size();
    if (size > synced) {
      // Worst case: nothing unsynced survived. With tear_tail, leave the
      // first 11 bytes of the first unsynced record — a complete length
      // prefix whose payload is cut short — so recovery exercises the
      // truncate-at-first-bad-CRC path rather than a clean end-of-file.
      const uint64_t keep =
          tear_tail ? synced + std::min<uint64_t>(size - synced, 11) : synced;
      PROMPT_RETURN_NOT_OK(segment.writer->TruncateTo(keep));
    }
    segment.writer.reset();  // the "process" holding the fd is gone
    segment.bytes = std::min(segment.bytes, size);
  }
  return Status::OK();
}

uint64_t DurableBlockStore::disk_bytes() const {
  uint64_t total = 0;
  for (const auto& [id, segment] : segments_) total += segment.bytes;
  return total;
}

void DurableBlockStore::BindMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  appends_total_ = registry->GetCounter("prompt_store_appends_total");
  append_bytes_total_ = registry->GetCounter("prompt_store_append_bytes_total");
  evictions_total_ = registry->GetCounter("prompt_store_evictions_total");
  syncs_total_ = registry->GetCounter("prompt_store_syncs_total");
  segments_created_total_ =
      registry->GetCounter("prompt_store_segments_created_total");
  segments_deleted_total_ =
      registry->GetCounter("prompt_store_segments_deleted_total");
  torn_records_total_ =
      registry->GetCounter("prompt_store_torn_records_total");
  torn_records_total_->Increment(recovery_.torn_records);
  live_batches_gauge_ = registry->GetGauge("prompt_store_live_batches");
  live_batches_gauge_->Set(static_cast<double>(index_.size()));
  disk_bytes_gauge_ = registry->GetGauge("prompt_store_disk_bytes");
  disk_bytes_gauge_->Set(static_cast<double>(disk_bytes()));
}

}  // namespace prompt
