// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// checksum guarding every segment record of the durable block store. CRC-32C
// is the storage-industry standard for torn-write detection (iSCSI, ext4,
// LevelDB/RocksDB logs); unlike the FNV mix inside EncodeBatch it has
// guaranteed burst-error detection, which is what a torn tail produces.
#pragma once

#include <cstddef>
#include <cstdint>

namespace prompt {

/// \brief CRC-32C of `len` bytes starting at `data`, seeded by `init`
/// (pass the previous return value to checksum data in chunks).
uint32_t Crc32c(const void* data, size_t len, uint32_t init = 0);

/// \brief Masked CRC in the LevelDB/RocksDB style: storing the raw CRC of
/// data that itself embeds CRCs makes accidental fixed points more likely,
/// so the stored form is rotated and offset. Verify by unmasking.
inline uint32_t MaskCrc32c(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc32c(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot >> 17) | (rot << 15);
}

}  // namespace prompt
