// DurableBlockStore: a crash-tolerant, append-only log of serialized
// batches behind the in-memory BatchStore (§8 replication). The memory tier
// bounds recovery capacity by RAM and dies with the process; this store
// makes rf=1 durable — every batch written while inside the query window
// survives a process kill and is recovered bit-identically on reopen,
// subject to the configured fsync policy.
//
// Layout: numbered segment files (`seg-000000.log`, ...) of length-prefixed
// CRC32C-checksummed records (store/segment.h). A record payload is
//   [kind u8][owner u32][batch_id u64][body]
// where kind is put (body = EncodeBatch bytes) or tombstone (empty body).
// `owner` namespaces batch ids — 0 for the single-tenant engine, the tenant
// index for the multi-tenant engine sharing one store.
//
// The offset index is memory-only and rebuilt by scanning every segment on
// Open(): puts set the key, tombstones clear it, the last write wins. A
// torn tail (the partial record a crash left in the active segment) fails
// its length or CRC check; the scan truncates the file at the first bad
// byte and reports the drop — recovery never fabricates a batch.
//
// Garbage collection matches the window-FIFO write pattern: eviction
// appends a tombstone, and whole segments are deleted from the *front* of
// the log once they hold no live put (prefix deletion can never resurrect
// a batch, because a tombstone always lands at or after its put).
// Compact() additionally reclaims interior holes with a crash-atomic full
// rewrite: live puts are re-appended into fresh segments and fsynced
// *before* the old generation is deleted (front-first), so a kill at any
// point mid-compaction leaves a recoverable, last-write-wins log.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "obs/metrics_registry.h"
#include "store/segment.h"

namespace prompt {

/// \brief When appends become durable (the classic WAL trade-off).
enum class FsyncPolicy {
  kNever,   ///< never fsync: fastest, a crash loses everything unsynced
  kBatch,   ///< fsync once per engine batch: a crash loses the current batch
  kAlways,  ///< fsync every record: a crash loses nothing acknowledged
};

const char* FsyncPolicyName(FsyncPolicy policy);
Result<FsyncPolicy> ParseFsyncPolicy(const std::string& name);

/// \brief Durable-store configuration (EngineOptions::store).
struct StoreOptions {
  /// Segment directory; empty disables the durable tier entirely.
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Per-node memory budget for the in-memory replica tier (BatchStore
  /// spills the oldest durably-stored copies past it; 0 = unlimited).
  size_t memory_budget_bytes = 0;
  /// Roll to a new segment once the active one reaches this size.
  size_t segment_bytes = 4u << 20;
  /// Compact() rewrites sealed segments whose live-put byte fraction is
  /// below this threshold.
  double compact_live_frac = 0.5;
  /// Size-based retention beyond window eviction (0 = unlimited). When the
  /// segment files exceed `retain_bytes` after a Put, the store compacts
  /// away dead weight and then expires the oldest-appended live batches
  /// until it fits (the newest batch always survives).
  size_t retain_bytes = 0;
  /// Per-owner count-based retention (0 = unlimited): after a Put, each
  /// owner keeps only its `retain_batches` newest live batches.
  uint64_t retain_batches = 0;

  bool enabled() const { return !dir.empty(); }
};

/// \brief What Open() found when it rebuilt the index from the segments.
struct StoreRecovery {
  uint64_t segments_scanned = 0;
  uint64_t batches_recovered = 0;  ///< live puts after tombstone replay
  uint64_t tombstones = 0;
  /// Torn/corrupt tails truncated away (honest data_loss accounting: each
  /// is a record that was written but did NOT survive).
  uint64_t torn_records = 0;
  uint64_t torn_bytes = 0;
};

/// \brief The durable tier. Thread-compatible (external synchronization),
/// matching the engine's single-threaded run loop.
class DurableBlockStore {
 public:
  /// Opens (creating the directory if needed) and rebuilds the index by
  /// scanning every segment, truncating torn tails. IO failures fail the
  /// open; corruption never does — it is truncated and reported.
  static Result<std::unique_ptr<DurableBlockStore>> Open(StoreOptions options);
  ~DurableBlockStore();
  PROMPT_DISALLOW_COPY_AND_ASSIGN(DurableBlockStore);

  /// Appends one serialized batch. Under FsyncPolicy::kAlways the record is
  /// fsynced before returning; otherwise durability waits for Sync().
  /// Re-putting an (owner, batch_id) overwrites its index entry.
  Status Put(uint32_t owner, uint64_t batch_id, const std::string& encoded);

  /// Reads a batch's serialized bytes back (index lookup + file read, CRC
  /// re-verified). KeyError when unknown or evicted.
  Result<std::string> Get(uint32_t owner, uint64_t batch_id) const;

  bool Contains(uint32_t owner, uint64_t batch_id) const;

  /// Tombstones a batch (it expired from the window) and deletes exhausted
  /// prefix segments. A no-op for unknown ids.
  Status Evict(uint32_t owner, uint64_t batch_id);

  /// Live batch ids of `owner`, ascending — the recovery iteration order.
  std::vector<uint64_t> LiveBatches(uint32_t owner) const;

  /// fsyncs the active segment (the kBatch policy's once-per-batch call).
  Status Sync();

  /// Crash-atomic full rewrite: re-appends every live put into fresh
  /// segments, fsyncs the new generation, then deletes the old segments
  /// front-first. A kill at any point leaves a recoverable log (both
  /// generations may briefly coexist; last-write-wins replay shadows the
  /// old copies).
  Status Compact();

  /// Models a process/machine kill for tests and fault schedules: every
  /// byte past the fsync watermark is discarded — with `tear_tail`, half of
  /// the first unsynced record is left behind so recovery must truncate at
  /// a bad CRC. The store object must not be used afterwards except to be
  /// destroyed; reopen the directory to recover.
  Status SimulateCrash(bool tear_tail);

  /// Registers prompt_store_* metrics on `registry` (nullptr is a no-op).
  void BindMetrics(MetricsRegistry* registry);

  const StoreRecovery& recovery() const { return recovery_; }
  const StoreOptions& options() const { return options_; }

  uint64_t live_batches() const { return index_.size(); }
  /// Bytes of live put payloads (what a full compaction would retain).
  uint64_t live_bytes() const { return live_bytes_; }
  /// Total bytes across all segment files (live + dead + tombstones).
  uint64_t disk_bytes() const;
  uint64_t segment_count() const { return segments_.size(); }
  TimeMicros last_append_micros() const { return last_append_micros_; }

 private:
  struct Location {
    uint64_t segment_id = 0;
    uint64_t offset = 0;      ///< record offset within the segment file
    uint64_t payload_bytes = 0;
  };
  struct Segment {
    uint64_t id = 0;
    std::string path;
    std::unique_ptr<SegmentWriter> writer;  ///< null once sealed
    uint64_t bytes = 0;
    uint64_t live_puts = 0;
    uint64_t live_put_bytes = 0;
  };

  explicit DurableBlockStore(StoreOptions options);

  std::string SegmentPath(uint64_t id) const;
  Segment* ActiveSegment();  ///< rolls to a new segment when full
  Status AppendRecord(const std::string& payload, Location* loc);
  /// Deletes zero-live segments from the front of the log.
  void CollectPrefix();
  /// Applies retain_batches / retain_bytes after a Put (tombstoning through
  /// Evict, so expiry is as crash-safe as window eviction).
  Status EnforceRetention();
  /// fsyncs the store directory after a segment delete, warning (not
  /// failing) on error — undone deletes are harmless, leaked ones not.
  void SyncDirBestEffort();
  Status ScanExisting();

  StoreOptions options_;
  StoreRecovery recovery_;
  /// (owner, batch_id) -> location of the latest put.
  std::map<std::pair<uint32_t, uint64_t>, Location> index_;
  /// Segment id -> state, ascending (log order).
  std::map<uint64_t, Segment> segments_;
  uint64_t next_segment_id_ = 0;
  uint64_t live_bytes_ = 0;
  TimeMicros last_append_micros_ = 0;
  /// True while Compact() re-appends the live generation: those internal
  /// Puts must not re-enter retention (mid-rewrite both generations are on
  /// disk, so a size-triggered compaction would recurse without bound).
  bool compacting_ = false;

  // prompt_store_* instrumentation (null when metrics are disabled).
  Counter* appends_total_ = nullptr;
  Counter* append_bytes_total_ = nullptr;
  Counter* evictions_total_ = nullptr;
  Counter* syncs_total_ = nullptr;
  Counter* segments_created_total_ = nullptr;
  Counter* segments_deleted_total_ = nullptr;
  Counter* torn_records_total_ = nullptr;
  Gauge* live_batches_gauge_ = nullptr;
  Gauge* disk_bytes_gauge_ = nullptr;
};

}  // namespace prompt
