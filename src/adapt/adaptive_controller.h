// Drift-aware adaptive partitioning (closing the telemetry → partitioning
// loop): a controller that watches the per-batch skew signals PR 4 already
// derives — TimeSeriesStore windowed aggregates plus the ExplainBatch
// dominant-cause verdict — and decides, under the same d-consecutive-batches
// + grace-period hysteresis discipline as ElasticController (Alg. 4), when
// the engine should swap the live partitioning technique across a
// configurable candidate ladder (cheapest first, most skew-robust last;
// default Hash → PK2 → Prompt).
//
// The controller only *decides*; the engine applies the swap between
// heartbeats (after Seal of batch i, before Begin of batch i+1), so no
// in-flight batch ever mixes techniques and the per-key window aggregates
// are unaffected by when switches happen (partitioning changes placement,
// never tuple→key content).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/factory.h"
#include "common/macros.h"
#include "obs/autopsy.h"
#include "obs/batch_report.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries.h"

namespace prompt {

/// \brief Adaptive-switching configuration (EngineOptions::adapt).
struct AdaptiveOptions {
  /// Master switch; when false the engine never constructs the controller.
  bool enabled = false;
  /// Candidate ladder, cheapest technique first, most skew-robust last.
  /// The run's initial technique must be one of these rungs.
  std::vector<PartitionerType> candidates = {
      PartitionerType::kHash, PartitionerType::kPk2, PartitionerType::kPrompt};
  /// Consecutive batches of evidence required before acting (hysteresis,
  /// same role as ElasticityOptions::d).
  int d = 3;
  /// Batches after a switch during which a reverse-direction switch is
  /// blocked (0 = reuse d, mirroring the elastic controller's grace rule).
  int grace = 0;
  /// Window W of the TimeSeriesStore aggregates the calm test reads.
  uint32_t window = 4;
  /// Calm (de-escalation) evidence: a batch counts as calm when the autopsy
  /// verdict is kNone AND the windowed mean block-load ratio and split-key
  /// fraction sit below these bounds ("ratio ≈ 1, split fraction ≈ 0").
  /// The split-fraction test only applies while the active technique splits
  /// keys on demand (the B-BPFI family) — unconditional splitters like
  /// PK2/PK5 keep a high split fraction even on uniform data.
  double calm_block_load_ratio = 1.10;
  double calm_split_key_frac = 0.02;
  /// Construction parameters handed to the factory when the engine builds
  /// the switched-to technique.
  PartitionerConfig config;
};

/// \brief One batch's verdict from the controller.
struct AdaptiveDecision {
  /// True when the engine should swap techniques before the next batch.
  bool switch_now = false;
  PartitionerType from = PartitionerType::kHash;
  PartitionerType to = PartitionerType::kHash;
  /// "skew" (escalation) or "calm" (de-escalation); "" when no switch.
  const char* reason = "";
  /// A d-streak completed but the grace period blocked the reverse move.
  bool blocked_by_grace = false;
};

/// \brief Hysteresis controller over the candidate ladder.
///
/// Escalation: d consecutive batches whose dominant autopsy cause is skew
/// (`kBucketSkew`, `kStragglerCore` or `kSplitKeyOverflow`) jump straight to
/// the ladder's top rung — skew is a live SLA violation, so the controller
/// goes to the most robust technique rather than probing intermediate rungs.
/// De-escalation: d consecutive calm batches (see AdaptiveOptions) step down
/// exactly one rung — shedding robustness is done cautiously.
/// A grace period after any switch blocks the reverse direction only, so a
/// fresh switch cannot be immediately undone by residual evidence, while
/// continued same-direction pressure still acts.
class AdaptivePartitionController {
 public:
  /// \param initial the technique the engine starts with; must be a rung of
  /// options.candidates.
  AdaptivePartitionController(AdaptiveOptions options, PartitionerType initial);
  PROMPT_DISALLOW_COPY_AND_ASSIGN(AdaptivePartitionController);

  /// Feeds one completed batch (its report and autopsy verdict); the point
  /// is pushed into the controller's own TimeSeriesStore before the rules
  /// run. When the returned decision has switch_now, the controller has
  /// already moved to `to` — the engine must apply the swap before the next
  /// batch begins.
  AdaptiveDecision OnBatchCompleted(const BatchReport& report,
                                    const BatchAutopsy& autopsy);

  /// The technique the controller currently wants live.
  PartitionerType active() const { return options_.candidates[rung_]; }
  size_t rung() const { return rung_; }

  uint64_t switches_up() const { return switches_up_; }
  uint64_t switches_down() const { return switches_down_; }

  /// The controller's private signal ring (window = options.window).
  const TimeSeriesStore& timeseries() const { return timeseries_; }

  /// Publishes `prompt_partitioner_switches_total{direction=up|down}` and a
  /// `prompt_active_technique` gauge (PartitionerType enum value) into
  /// `registry`. nullptr disables (the default).
  void BindMetrics(MetricsRegistry* registry,
                   const MetricLabels& labels = {});

  /// True when `cause` counts as skew (escalation) evidence.
  static bool IsSkewCause(BatchCause cause);

  const AdaptiveOptions& options() const { return options_; }

 private:
  int grace_batches() const { return options_.grace > 0 ? options_.grace : options_.d; }

  AdaptiveOptions options_;
  TimeSeriesStore timeseries_;
  size_t rung_;             ///< index into options_.candidates
  int skew_count_ = 0;      ///< consecutive batches of skew evidence
  int calm_count_ = 0;      ///< consecutive batches of calm evidence
  int grace_remaining_ = 0;
  int last_direction_ = 0;  ///< +1 after escalation, -1 after de-escalation
  uint64_t switches_up_ = 0;
  uint64_t switches_down_ = 0;

  // Optional instrumentation handles (all null or all set).
  Counter* switches_up_total_ = nullptr;
  Counter* switches_down_total_ = nullptr;
  Gauge* active_technique_gauge_ = nullptr;
};

}  // namespace prompt
