#include "adapt/adaptive_controller.h"

#include <algorithm>

#include "common/logging.h"

namespace prompt {

namespace {

TimeSeriesOptions RingOptionsFor(const AdaptiveOptions& options) {
  TimeSeriesOptions ts;
  // The controller only ever reads window-W aggregates; a small ring keeps
  // it allocation-light no matter how long the run is.
  ts.capacity = std::max<size_t>(64, options.window * 2);
  ts.window = options.window;
  return ts;
}

size_t RungOf(const AdaptiveOptions& options, PartitionerType initial) {
  for (size_t i = 0; i < options.candidates.size(); ++i) {
    if (options.candidates[i] == initial) return i;
  }
  PROMPT_CHECK_MSG(false,
                   "adaptive: initial technique is not in the candidate set");
  return 0;
}

}  // namespace

AdaptivePartitionController::AdaptivePartitionController(
    AdaptiveOptions options, PartitionerType initial)
    : options_(std::move(options)),
      timeseries_(RingOptionsFor(options_)),
      rung_(RungOf(options_, initial)) {
  PROMPT_CHECK_MSG(!options_.candidates.empty(),
                   "adaptive: candidate set must not be empty");
  PROMPT_CHECK(options_.d >= 1);
  PROMPT_CHECK(options_.window >= 1);
}

bool AdaptivePartitionController::IsSkewCause(BatchCause cause) {
  return cause == BatchCause::kBucketSkew ||
         cause == BatchCause::kStragglerCore ||
         cause == BatchCause::kSplitKeyOverflow;
}

namespace {

/// True for techniques that split keys only when the frequency model demands
/// it (the B-BPFI family): for these, a near-zero split-key fraction means
/// "the plan saw no heavy keys" — genuine calm evidence. Techniques that
/// split unconditionally (PK2/PK5 spread every key across their candidate
/// buckets; Shuffle splits everything) keep a high split fraction even on
/// uniform data, so the gauge says nothing about skew under them.
bool SplitsOnDemand(PartitionerType type) {
  switch (type) {
    case PartitionerType::kPrompt:
    case PartitionerType::kPromptPostSort:
    case PartitionerType::kFfd:
    case PartitionerType::kFragMin:
    case PartitionerType::kSketch:
      return true;
    case PartitionerType::kTimeBased:
    case PartitionerType::kShuffle:
    case PartitionerType::kHash:
    case PartitionerType::kPk2:
    case PartitionerType::kPk5:
    case PartitionerType::kCam:
      return false;
  }
  return false;
}

}  // namespace

AdaptiveDecision AdaptivePartitionController::OnBatchCompleted(
    const BatchReport& report, const BatchAutopsy& autopsy) {
  timeseries_.Observe(report);
  // Same discipline as ElasticController: grace is judged on entry, so a
  // switch's grace window covers the next grace_batches() batches fully.
  const bool grace_active = grace_remaining_ > 0;
  if (grace_active) --grace_remaining_;

  // Evidence classification. A batch is skew evidence when the autopsy
  // attributes its excess latency to a placement problem; calm evidence when
  // the autopsy is clean AND the windowed skew signals sit near their ideal
  // values. Anything else (queueing, recovery, back-pressure, or clean
  // verdicts over a still-skewed window) resets both streaks — ambiguous
  // batches must not accumulate toward either move.
  const bool skew_evidence = IsSkewCause(autopsy.dominant);
  bool calm_evidence = false;
  if (!skew_evidence && autopsy.dominant == BatchCause::kNone) {
    const WindowAggregate load =
        timeseries_.Aggregate(TimeSeriesSignal::kBlockLoadRatio);
    calm_evidence = load.mean <= options_.calm_block_load_ratio;
    // The split-key gauge only means "no heavy keys" under a technique that
    // splits on demand; unconditional splitters (PK2/PK5/Shuffle) keep it
    // high on uniform data, so it is skipped for them.
    if (calm_evidence && SplitsOnDemand(active())) {
      const WindowAggregate split =
          timeseries_.Aggregate(TimeSeriesSignal::kSplitKeyFrac);
      calm_evidence = split.mean <= options_.calm_split_key_frac;
    }
  }
  if (skew_evidence) {
    ++skew_count_;
    calm_count_ = 0;
  } else if (calm_evidence) {
    ++calm_count_;
    skew_count_ = 0;
  } else {
    skew_count_ = 0;
    calm_count_ = 0;
  }

  AdaptiveDecision decision;
  decision.from = active();
  decision.to = active();

  // Escalation: d consecutive skewed batches jump to the top rung (the most
  // robust candidate) — skew is a live SLA violation, so the controller does
  // not probe intermediate rungs on the way up.
  if (skew_count_ >= options_.d && rung_ + 1 < options_.candidates.size()) {
    if (grace_active && last_direction_ < 0) {
      // Streak restarts from zero after the block, mirroring the elastic
      // controller's grace rule.
      decision.blocked_by_grace = true;
      skew_count_ = 0;
      return decision;
    }
    rung_ = options_.candidates.size() - 1;
    decision.switch_now = true;
    decision.to = active();
    decision.reason = "skew";
    ++switches_up_;
    last_direction_ = +1;
    grace_remaining_ = grace_batches();
    skew_count_ = 0;
    calm_count_ = 0;
    if (switches_up_total_ != nullptr) switches_up_total_->Increment();
    if (active_technique_gauge_ != nullptr) {
      active_technique_gauge_->Set(static_cast<double>(active()));
    }
    return decision;
  }

  // De-escalation: d consecutive calm batches step down one rung — shedding
  // robustness is done a step at a time.
  if (calm_count_ >= options_.d && rung_ > 0) {
    if (grace_active && last_direction_ > 0) {
      decision.blocked_by_grace = true;
      calm_count_ = 0;
      return decision;
    }
    --rung_;
    decision.switch_now = true;
    decision.to = active();
    decision.reason = "calm";
    ++switches_down_;
    last_direction_ = -1;
    grace_remaining_ = grace_batches();
    skew_count_ = 0;
    calm_count_ = 0;
    if (switches_down_total_ != nullptr) switches_down_total_->Increment();
    if (active_technique_gauge_ != nullptr) {
      active_technique_gauge_->Set(static_cast<double>(active()));
    }
    return decision;
  }

  return decision;
}

void AdaptivePartitionController::BindMetrics(MetricsRegistry* registry,
                                              const MetricLabels& labels) {
  if (registry == nullptr) return;
  MetricLabels up = labels, down = labels;
  up.emplace_back("direction", "up");
  down.emplace_back("direction", "down");
  switches_up_total_ =
      registry->GetCounter("prompt_partitioner_switches_total", up);
  switches_down_total_ =
      registry->GetCounter("prompt_partitioner_switches_total", down);
  active_technique_gauge_ =
      registry->GetGauge("prompt_active_technique", labels);
  active_technique_gauge_->Set(static_cast<double>(active()));
}

}  // namespace prompt
