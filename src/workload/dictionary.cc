#include "workload/dictionary.h"

#include <array>

namespace prompt {

std::string SynthesizeWord(uint64_t rank) {
  static constexpr std::array<const char*, 24> kSyllables = {
      "re", "to", "na", "si", "la", "ke", "mi", "do", "va", "lu", "pe", "ri",
      "so", "ta", "ne", "ko", "ma", "du", "vi", "le", "pa", "ru", "se", "ti"};
  // Bijective base-24 over syllables: short words for low ranks.
  std::string word;
  uint64_t n = rank + 1;
  while (n > 0) {
    --n;
    word += kSyllables[n % kSyllables.size()];
    n /= kSyllables.size();
  }
  return word;
}

std::string SynthesizeMedallion(uint64_t rank) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string label(4, '0');
  uint64_t n = rank;
  for (int i = 3; i >= 0; --i) {
    label[i] = kHex[n % 16];
    n /= 16;
  }
  label += '-';
  label += static_cast<char>('A' + (rank / 65536) % 26);
  label += static_cast<char>('A' + (rank / (65536 * 26)) % 26);
  return label;
}

}  // namespace prompt
