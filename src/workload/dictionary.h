// String-key dictionary: sources with textual partitioning keys (words,
// taxi medallions) intern each string once and stream compact KeyIds; sinks
// reverse-map ids for display. Mirrors the dictionary encoding a production
// receiver performs before partitioning.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/result.h"
#include "model/tuple.h"

namespace prompt {

/// \brief Bidirectional string <-> KeyId mapping with stable ids.
///
/// Ids are dense (0, 1, 2, ...) in first-intern order, so they double as
/// indices into per-key arrays. Not thread-safe: interning happens on the
/// single receiver thread, lookups on the driver.
class KeyDictionary {
 public:
  /// Returns the id for `text`, interning it on first sight.
  KeyId Intern(std::string_view text) {
    auto it = index_.find(text);
    if (it != index_.end()) return it->second;
    strings_.emplace_back(text);
    const KeyId id = static_cast<KeyId>(strings_.size() - 1);
    // deque never relocates elements, so the view stays valid.
    index_.emplace(std::string_view(strings_.back()), id);
    return id;
  }

  /// Reverse lookup; KeyError for ids never interned.
  Result<std::string_view> Lookup(KeyId id) const {
    if (id >= strings_.size()) {
      return Status::KeyError("unknown key id " + std::to_string(id));
    }
    return std::string_view(strings_[id]);
  }

  /// Lookup that never fails (returns a placeholder for foreign ids);
  /// convenient in display paths.
  std::string LookupOr(KeyId id, std::string fallback = "<?>") const {
    auto r = Lookup(id);
    return r.ok() ? std::string(*r) : fallback;
  }

  bool Contains(std::string_view text) const {
    return index_.find(text) != index_.end();
  }

  size_t size() const { return strings_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, KeyId, Hash, Eq> index_;
};

/// \brief Deterministically synthesizes a pronounceable word for a
/// vocabulary rank ("re", "tona", "silakemi", ...). Rank 0 gets the
/// shortest word, mirroring the inverse length/frequency law of text.
std::string SynthesizeWord(uint64_t rank);

/// \brief NYC-style taxi medallion label for a rank, e.g. "7F23-MD".
std::string SynthesizeMedallion(uint64_t rank);

}  // namespace prompt
