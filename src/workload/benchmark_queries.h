// The paper's named workloads (§7.1) as first-class query definitions, so
// benches, tools, and examples run the same thing by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/job.h"
#include "workload/sources.h"

namespace prompt {

/// \brief One (dataset, query) workload from the paper's evaluation.
struct BenchmarkWorkload {
  std::string name;
  DatasetId dataset;
  JobSpec job;
  /// Window and slide in paper time, scaled by `time_scale` (the paper's
  /// windows are minutes-to-hours; benches run them seconds-scaled).
  TimeMicros window = Seconds(30);
  TimeMicros slide = Seconds(1);
  uint32_t top_k = 0;
  std::string description;
};

/// \brief All workloads of §7.1, with windows scaled by `time_scale`
/// (1.0 = paper time; the default 1/60 maps minutes to seconds).
std::vector<BenchmarkWorkload> PaperWorkloads(double time_scale = 1.0 / 60.0);

/// \brief Lookup by name ("WordCount", "TopKCount", "DebsQ1", "DebsQ2",
/// "GcmUsage", "TpchQ1", "TpchQ6").
Result<BenchmarkWorkload> WorkloadByName(const std::string& name,
                                         double time_scale = 1.0 / 60.0);

}  // namespace prompt
