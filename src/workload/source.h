// Tuple sources: the stream generators standing in for the paper's datasets
// (Table 1). Each source paces its timestamps according to a RateProfile and
// draws keys from a dataset-specific distribution.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "model/tuple.h"

namespace prompt {

/// \brief Infinite ordered stream of tuples.
///
/// Next() produces tuples with non-decreasing timestamps (the model's
/// arrival-order assumption). Sources are deterministic per seed.
class TupleSource {
 public:
  virtual ~TupleSource() = default;
  virtual const char* name() const = 0;
  /// Produces the next tuple. Returns false when the stream is exhausted
  /// (synthetic sources are infinite and always return true).
  virtual bool Next(Tuple* t) = 0;
  /// Nominal distinct-key cardinality of the dataset (Table 1 column).
  virtual uint64_t cardinality() const = 0;
};

}  // namespace prompt
