// Key-space relabeling wrapper: applies an affine map (key * mul + add) to
// an inner stream's keys. Multi-tenant harnesses use it to carve disjoint
// key spaces out of independent generators — two sources wrapped with
// (mul=2, add=0) and (mul=2, add=1) interleave into one stream that
// mod:2:0 / mod:2:1 KeyFilters separate exactly, even though the generators'
// own key ids overlap (the Zipf mixing bijection spans the full 64-bit
// space, so range filters cannot do this).
#pragma once

#include "common/macros.h"
#include "workload/source.h"

namespace prompt {

/// \brief Affine key relabeling over a wrapped source (not owned).
class KeyMappedSource final : public TupleSource {
 public:
  KeyMappedSource(TupleSource* inner, uint64_t mul, uint64_t add)
      : inner_(inner), mul_(mul), add_(add) {
    PROMPT_CHECK(inner_ != nullptr);
    PROMPT_CHECK(mul_ > 0);
  }

  const char* name() const override { return "KeyMapped"; }

  bool Next(Tuple* t) override {
    if (!inner_->Next(t)) return false;
    t->key = t->key * mul_ + add_;
    return true;
  }

  uint64_t cardinality() const override { return inner_->cardinality(); }

 private:
  TupleSource* inner_;
  uint64_t mul_;
  uint64_t add_;
};

}  // namespace prompt
