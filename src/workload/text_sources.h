// Sources with real textual keys, interned through a KeyDictionary — the
// full receiver-side pipeline the paper assumes ("each tweet is split into
// words that are used as the key for the tuple", §7.1).
#pragma once

#include <memory>

#include "workload/dictionary.h"
#include "workload/sources.h"

namespace prompt {

/// \brief Tweet stream with actual word strings: each tweet is 8-20
/// Zipf-distributed vocabulary words; each emitted tuple's key is the
/// interned word id and the dictionary is exposed for display.
class WordStreamSource final : public TupleSource {
 public:
  struct Params {
    uint64_t vocabulary = 100000;
    double zipf = 1.0;
    uint64_t seed = 42;
    std::shared_ptr<const RateProfile> rate;
  };

  explicit WordStreamSource(Params params);

  const char* name() const override { return "WordStream"; }
  uint64_t cardinality() const override { return params_.vocabulary; }
  bool Next(Tuple* t) override;

  /// The word behind a key id (valid for every id this source emitted).
  const KeyDictionary& dictionary() const { return dictionary_; }

  /// The text of the current tuple's word (same as dictionary lookup).
  std::string WordOf(KeyId id) const { return dictionary_.LookupOr(id); }

 private:
  Params params_;
  Rng rng_;
  ZipfSampler zipf_;
  KeyDictionary dictionary_;
  double now_ = 0;
  uint32_t words_left_ = 0;
  TimeMicros tweet_ts_ = 0;
};

/// \brief Taxi-trip stream keyed by medallion strings (DEBS 2015 shape),
/// with fare values and a dictionary for display.
class MedallionTripSource final : public TupleSource {
 public:
  struct Params {
    uint64_t medallions = 200000;
    double zipf = 0.6;
    uint64_t seed = 42;
    std::shared_ptr<const RateProfile> rate;
  };

  explicit MedallionTripSource(Params params);

  const char* name() const override { return "MedallionTrips"; }
  uint64_t cardinality() const override { return params_.medallions; }
  bool Next(Tuple* t) override;

  const KeyDictionary& dictionary() const { return dictionary_; }

 private:
  Params params_;
  Rng rng_;
  ZipfSampler zipf_;
  KeyDictionary dictionary_;
  double now_ = 0;
};

}  // namespace prompt
