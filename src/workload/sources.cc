#include "workload/sources.h"

#include <algorithm>

#include "common/hash.h"

namespace prompt {

ZipfKeyedSource::ZipfKeyedSource(Params params)
    : params_(std::move(params)),
      rng_(params_.seed),
      zipf_(params_.cardinality, params_.zipf),
      now_(static_cast<double>(params_.start_time)) {
  PROMPT_CHECK_MSG(params_.rate != nullptr, "source requires a rate profile");
}

TimeMicros ZipfKeyedSource::NextTimestamp() {
  const double rate = params_.rate->RateAt(static_cast<TimeMicros>(now_));
  PROMPT_CHECK(rate > 0);
  now_ += 1e6 / rate;
  return static_cast<TimeMicros>(now_);
}

bool ZipfKeyedSource::Next(Tuple* t) {
  t->ts = NextTimestamp();
  const uint64_t rank = zipf_.Sample(rng_);
  // Mix64 is a bijection on 64-bit ints: decorrelates key id from rank
  // without a giant permutation table.
  t->key = Mix64(rank ^ (params_.seed << 32));
  t->value = NextValue(rng_);
  return true;
}

SkewShiftSource::SkewShiftSource(Params params, double zipf_after,
                                 TimeMicros shift_at)
    : ZipfKeyedSource(std::move(params)),
      after_(params_.cardinality, zipf_after),
      shift_at_(shift_at) {}

bool SkewShiftSource::Next(Tuple* t) {
  t->ts = NextTimestamp();
  // Same rng_ stream and the same rank→key mixing on both sides: only the
  // rank distribution changes at the shift.
  const uint64_t rank =
      (t->ts >= shift_at_ ? after_ : zipf_).Sample(rng_);
  t->key = Mix64(rank ^ (params_.seed << 32));
  t->value = 1.0;
  return true;
}

TweetsSource::TweetsSource(Params params)
    : ZipfKeyedSource(std::move(params)) {}

bool TweetsSource::Next(Tuple* t) {
  if (words_left_ == 0) {
    // New tweet: 8-20 words sharing one arrival timestamp. The rate profile
    // paces *words* so throughput units stay tuples/sec across datasets.
    words_left_ = 8 + static_cast<uint32_t>(rng_.NextBounded(13));
    tweet_ts_ = NextTimestamp();
  } else {
    NextTimestamp();  // keep pacing consistent per emitted word
  }
  --words_left_;
  t->ts = tweet_ts_;
  const uint64_t rank = zipf_.Sample(rng_);
  t->key = Mix64(rank ^ (params_.seed << 32));
  t->value = 1.0;
  return true;
}

DebsTaxiSource::DebsTaxiSource(Params params, Query query)
    : ZipfKeyedSource(std::move(params)), query_(query) {}

double DebsTaxiSource::NextValue(Rng& rng) {
  if (query_ == Query::kFare) {
    // Fare: base + metered component, heavy right tail for airport runs.
    double fare = 2.5 + rng.NextExponential(0.12);
    return std::min(fare, 120.0);
  }
  // Distance in miles: mostly short urban hops.
  double miles = 0.3 + rng.NextExponential(0.45);
  return std::min(miles, 40.0);
}

GcmSource::GcmSource(Params params) : ZipfKeyedSource(std::move(params)) {}

double GcmSource::NextValue(Rng& rng) {
  // Normalized CPU usage sample in [0, 1], beta-like via squaring.
  double u = rng.NextDouble();
  return u * u;
}

TpchLineItemSource::TpchLineItemSource(Params params)
    : ZipfKeyedSource(std::move(params)) {}

double TpchLineItemSource::NextValue(Rng& rng) {
  // l_quantity: uniform integer 1..50 per the TPC-H generator.
  return static_cast<double>(1 + rng.NextBounded(50));
}

std::unique_ptr<TupleSource> MakeDataset(
    DatasetId id, std::shared_ptr<const RateProfile> rate, uint64_t seed,
    double synd_zipf, double cardinality_scale) {
  ZipfKeyedSource::Params params;
  params.rate = std::move(rate);
  params.seed = seed;
  switch (id) {
    case DatasetId::kTweets:
      params.cardinality = 790000;  // Table 1
      params.zipf = 1.0;            // natural-language word law
      break;
    case DatasetId::kSynD:
      params.cardinality = 1000000;  // Table 1: 500k-1M
      params.zipf = synd_zipf;
      break;
    case DatasetId::kDebs:
      params.cardinality = 8000000;  // Table 1
      params.zipf = 0.6;             // moderate per-cab activity skew
      break;
    case DatasetId::kGcm:
      params.cardinality = 600000;  // Table 1
      params.zipf = 1.2;            // long-running services dominate events
      break;
    case DatasetId::kTpch:
      params.cardinality = 1000000;  // Table 1
      params.zipf = 0.3;             // near-uniform part popularity
      break;
  }
  params.cardinality = std::max<uint64_t>(
      16, static_cast<uint64_t>(static_cast<double>(params.cardinality) *
                                cardinality_scale));
  switch (id) {
    case DatasetId::kTweets:
      return std::make_unique<TweetsSource>(std::move(params));
    case DatasetId::kSynD:
      return std::make_unique<SynDSource>(std::move(params));
    case DatasetId::kDebs:
      return std::make_unique<DebsTaxiSource>(std::move(params),
                                              DebsTaxiSource::Query::kFare);
    case DatasetId::kGcm:
      return std::make_unique<GcmSource>(std::move(params));
    case DatasetId::kTpch:
      return std::make_unique<TpchLineItemSource>(std::move(params));
  }
  return nullptr;
}

const char* DatasetName(DatasetId id) {
  switch (id) {
    case DatasetId::kTweets: return "Tweets";
    case DatasetId::kSynD: return "SynD";
    case DatasetId::kDebs: return "DEBS";
    case DatasetId::kGcm: return "GCM";
    case DatasetId::kTpch: return "TPC-H";
  }
  return "?";
}

}  // namespace prompt
