#include "workload/scenarios.h"

#include "common/hash.h"
#include "replay/journal.h"

namespace prompt {

FlashCrowdSource::FlashCrowdSource(Params params, BurstParams burst)
    : ZipfKeyedSource(std::move(params)), burst_(burst) {
  PROMPT_CHECK(burst_.burst_frac >= 0 && burst_.burst_frac <= 1);
  PROMPT_CHECK(burst_.hot_keys >= 1);
}

bool FlashCrowdSource::Next(Tuple* t) {
  t->ts = NextTimestamp();
  // One rank draw per tuple whether or not it is redirected, so the
  // background stream after the burst is identical to a burst-free run.
  const uint64_t rank = zipf_.Sample(rng_);
  const bool in_burst = t->ts >= burst_.burst_start &&
                        t->ts < burst_.burst_start + burst_.burst_len;
  if (in_burst && rng_.NextBool(burst_.burst_frac)) {
    // Viral keys live outside the background key space (salted mixing), so
    // the crowd adds new heavy hitters instead of amplifying existing ones.
    const uint64_t viral = rank % burst_.hot_keys;
    t->key = Mix64(viral ^ (params_.seed << 32) ^ 0xF1A54C09DULL);
  } else {
    t->key = Mix64(rank ^ (params_.seed << 32));
  }
  t->value = 1.0;
  return true;
}

VocabularyChurnSource::VocabularyChurnSource(Params params,
                                             TimeMicros epoch_len)
    : ZipfKeyedSource(std::move(params)), epoch_len_(epoch_len) {
  PROMPT_CHECK(epoch_len > 0);
}

bool VocabularyChurnSource::Next(Tuple* t) {
  t->ts = NextTimestamp();
  const uint64_t rank = zipf_.Sample(rng_);
  // Salting the mix with the epoch index rotates the whole vocabulary:
  // rank 1 (the hottest key) is a *different* key each epoch, while the
  // rank distribution — what the partitioner can actually learn — repeats.
  const uint64_t epoch = static_cast<uint64_t>(t->ts / epoch_len_);
  t->key = Mix64(rank ^ (params_.seed << 32) ^ (epoch * 0x9E3779B97F4A7C15ULL));
  t->value = 1.0;
  return true;
}

ScenarioSpec MakeScenario(ScenarioId id, double rate_tps, uint64_t seed) {
  ScenarioSpec spec;
  ZipfKeyedSource::Params params;
  params.cardinality = 100000;
  params.zipf = 1.0;
  params.seed = seed;
  switch (id) {
    case ScenarioId::kDiurnal: {
      // Troughs at the base rate, a ~4× spike once per 20 s "day".
      params.rate =
          std::make_shared<DiurnalRate>(rate_tps, 3.0, Seconds(20), 9);
      spec.source = std::make_unique<SynDSource>(std::move(params));
      spec.description = "diurnal rate swings (sharp 4x peak per 20s day)";
      break;
    }
    case ScenarioId::kFlashCrowd: {
      params.rate = std::make_shared<ConstantRate>(rate_tps);
      FlashCrowdSource::BurstParams burst;
      burst.burst_start = Seconds(4);
      burst.burst_len = Seconds(4);
      burst.burst_frac = 0.6;
      burst.hot_keys = 3;
      spec.source =
          std::make_unique<FlashCrowdSource>(std::move(params), burst);
      spec.description =
          "flash crowd: 60% of tuples collapse onto 3 viral keys for 4s";
      break;
    }
    case ScenarioId::kVocabChurn: {
      params.rate = std::make_shared<ConstantRate>(rate_tps);
      spec.source = std::make_unique<VocabularyChurnSource>(std::move(params),
                                                            Seconds(3));
      spec.description = "vocabulary churn: full key-space rotation every 3s";
      break;
    }
  }
  return spec;
}

Result<ScenarioSpec> MakeScenario(const std::string& spec, double rate_tps,
                                  uint64_t seed) {
  if (spec.rfind("replay:", 0) == 0) {
    const std::string dir = spec.substr(7);
    if (dir.empty()) {
      return Status::Invalid("scenario 'replay:' needs a journal directory");
    }
    PROMPT_ASSIGN_OR_RETURN(JournalData journal, ReadJournal(dir));
    ScenarioSpec out;
    out.source = std::make_unique<JournalTupleSource>(journal.AllTuples());
    out.description = "captured tuple stream replayed from a run journal";
    return out;
  }
  for (ScenarioId id :
       {ScenarioId::kDiurnal, ScenarioId::kFlashCrowd, ScenarioId::kVocabChurn}) {
    if (spec == ScenarioName(id)) return MakeScenario(id, rate_tps, seed);
  }
  return Status::Invalid(
      "unknown scenario '" + spec +
      "' (want diurnal, flash_crowd, vocab_churn or replay:<dir>)");
}

const char* ScenarioName(ScenarioId id) {
  switch (id) {
    case ScenarioId::kDiurnal: return "diurnal";
    case ScenarioId::kFlashCrowd: return "flash_crowd";
    case ScenarioId::kVocabChurn: return "vocab_churn";
  }
  return "?";
}

}  // namespace prompt
