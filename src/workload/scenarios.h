// Bursty / adversarial workload scenarios for the robustness suite: inputs
// deliberately shaped to stress the partitioner's weak spots — rate swings
// that defeat a fixed batch plan, flash-crowd key bursts that concentrate
// load on a handful of keys mid-run, and vocabulary churn that invalidates
// any frequency history the planner accumulated. All are deterministic
// functions of (seed, params): the same scenario replays bit-identically,
// which the crash-restart tests rely on.
#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "workload/rate_profile.h"
#include "workload/sources.h"

namespace prompt {

/// \brief A day-like rate curve: a sinusoid sharpened by an odd power, so
/// the peak is a short rush-hour spike rather than a gentle hump. With
/// peak_frac well above 1/sharpness the off-peak troughs starve batches
/// while the peak overruns them — the diurnal stress for the batch resizer
/// and elastic controller.
class DiurnalRate final : public RateProfile {
 public:
  /// \param base off-peak rate (tuples/sec), must be > 0
  /// \param peak_frac peak adds peak_frac × base on top of the base rate
  /// \param period one simulated "day"
  /// \param sharpness odd-ish exponent (≥ 1) narrowing the peak; 1 = plain
  ///        sinusoid, 9 ≈ a two-hour rush in a 24-hour day
  DiurnalRate(double base, double peak_frac, TimeMicros period,
              uint32_t sharpness = 9)
      : base_(base),
        peak_frac_(peak_frac),
        period_(period),
        sharpness_(sharpness) {
    PROMPT_CHECK(base > 0);
    PROMPT_CHECK(peak_frac >= 0);
    PROMPT_CHECK(period > 0);
    PROMPT_CHECK(sharpness >= 1);
  }

  double RateAt(TimeMicros t) const override {
    const double phase = 2.0 * 3.14159265358979323846 *
                         static_cast<double>(t % period_) /
                         static_cast<double>(period_);
    // sin^2k keeps the curve in [0,1]; raising the power narrows the peak
    // while the integral (mean load) shrinks — exactly a commute spike.
    double s = std::sin(phase / 2.0);
    s *= s;
    double peak = 1.0;
    for (uint32_t i = 0; i < sharpness_; ++i) peak *= s;
    return base_ * (1.0 + peak_frac_ * peak);
  }

 private:
  double base_;
  double peak_frac_;
  TimeMicros period_;
  uint32_t sharpness_;
};

/// \brief Flash crowd: a background Zipf stream in which, during
/// [burst_start, burst_start + burst_len), a fraction of tuples collapses
/// onto `hot_keys` "viral" keys. The aggregate rate is unchanged — only the
/// key concentration explodes, so block-size imbalance (not throughput) is
/// what spikes. The canonical trigger for an adaptive escalation to a
/// split-capable technique.
class FlashCrowdSource final : public ZipfKeyedSource {
 public:
  struct BurstParams {
    TimeMicros burst_start = 0;
    TimeMicros burst_len = 0;
    /// Probability a burst-window tuple is redirected to a viral key.
    double burst_frac = 0.6;
    /// Number of distinct viral keys the crowd converges on.
    uint64_t hot_keys = 3;
  };

  FlashCrowdSource(Params params, BurstParams burst);
  const char* name() const override { return "FlashCrowd"; }
  bool Next(Tuple* t) override;

 private:
  BurstParams burst_;
};

/// \brief Vocabulary churn: every `epoch_len` of stream time the key space
/// rotates — ranks map through a different epoch-salted mixing, so the
/// previous epoch's hot keys vanish and an entirely fresh vocabulary (same
/// Zipf shape) replaces them. Frequency histories and learned key→bucket
/// routings are worthless across epochs; only the distribution *shape*
/// carries over.
class VocabularyChurnSource final : public ZipfKeyedSource {
 public:
  VocabularyChurnSource(Params params, TimeMicros epoch_len);
  const char* name() const override { return "VocabChurn"; }
  bool Next(Tuple* t) override;

 private:
  TimeMicros epoch_len_;
};

/// \brief Named scenario presets used by promptctl --scenario and the
/// durability bench (one place defines rates/seeds so CLI runs, tests and
/// BENCH signals agree on the workload).
enum class ScenarioId { kDiurnal, kFlashCrowd, kVocabChurn };

struct ScenarioSpec {
  std::unique_ptr<TupleSource> source;
  const char* description = "";
};

/// \param rate_tps mean offered load; \param seed drives every draw.
ScenarioSpec MakeScenario(ScenarioId id, double rate_tps, uint64_t seed);

/// String-spec scenarios for promptctl --scenario: a preset name
/// ("diurnal", "flash_crowd", "vocab_churn"), or "replay:<dir>" — the
/// captured tuple stream of a flight-recorder journal (src/replay/),
/// replayed in recorded order across every attempt in the directory.
/// rate/seed are ignored by replay: the journal carries its own timing.
Result<ScenarioSpec> MakeScenario(const std::string& spec, double rate_tps,
                                  uint64_t seed);

const char* ScenarioName(ScenarioId id);

}  // namespace prompt
