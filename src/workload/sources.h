// Concrete stream generators standing in for the paper's five datasets
// (Table 1). Sizes/cardinalities default to laptop-scale equivalents; the
// key-frequency *shape* (Zipf exponent) is what the partitioners react to,
// so each source documents the skew regime it models.
#pragma once

#include <memory>
#include <string>

#include "common/random.h"
#include "workload/rate_profile.h"
#include "workload/source.h"

namespace prompt {

/// \brief Base for sources that draw keys from a Zipf distribution and pace
/// timestamps according to a RateProfile.
///
/// Key identities are decorrelated from Zipf ranks through a 64-bit mixing
/// bijection, so hash-based baselines are not accidentally helped or hurt by
/// rank-ordered key ids.
class ZipfKeyedSource : public TupleSource {
 public:
  struct Params {
    uint64_t cardinality = 1000000;
    double zipf = 1.0;
    uint64_t seed = 42;
    std::shared_ptr<const RateProfile> rate;
    TimeMicros start_time = 0;
  };

  explicit ZipfKeyedSource(Params params);

  bool Next(Tuple* t) override;
  uint64_t cardinality() const override { return params_.cardinality; }

  /// Replaces the pacing profile (used by back-pressure sweeps).
  void set_rate(std::shared_ptr<const RateProfile> rate) {
    params_.rate = std::move(rate);
  }

  double now_seconds() const { return now_ / 1e6; }

 protected:
  /// Value carried by the tuple; subclasses model dataset semantics.
  virtual double NextValue(Rng& rng) { (void)rng; return 1.0; }

  /// Advances the pacing clock by one inter-arrival and returns the ts.
  TimeMicros NextTimestamp();

  Params params_;
  Rng rng_;
  ZipfSampler zipf_;
  double now_;  // microseconds, fractional to avoid pacing drift
};

/// \brief SynD: the paper's synthetic Zipf dataset, z ∈ {0.1..2.0}, up to
/// 10^7 distinct keys. value = 1 (WordCount-style).
class SynDSource final : public ZipfKeyedSource {
 public:
  explicit SynDSource(Params params) : ZipfKeyedSource(std::move(params)) {}
  const char* name() const override { return "SynD"; }
};

/// \brief SynD with a mid-run skew shift (the §7 drift scenario): tuples
/// with ts < shift_at draw ranks from Zipf(params.zipf), later ones from
/// Zipf(zipf_after). Pacing, key mixing and value semantics are identical on
/// both sides of the shift, so a partitioner sees a pure key-distribution
/// drift — the adaptive-switching benchmarks' canonical workload.
class SkewShiftSource final : public ZipfKeyedSource {
 public:
  SkewShiftSource(Params params, double zipf_after, TimeMicros shift_at);
  const char* name() const override { return "SkewShift"; }
  bool Next(Tuple* t) override;

 private:
  ZipfSampler after_;
  TimeMicros shift_at_;
};

/// \brief Tweets: 2015 tweet sample, 790 k distinct words. Modeled as
/// Zipf(z = 1.0) word frequencies (empirical law for natural text); each
/// "tweet" bursts 8-20 word tuples at one timestamp, keys are words.
class TweetsSource final : public ZipfKeyedSource {
 public:
  explicit TweetsSource(Params params);
  const char* name() const override { return "Tweets"; }
  bool Next(Tuple* t) override;

 private:
  uint32_t words_left_ = 0;
  TimeMicros tweet_ts_ = 0;
};

/// \brief DEBS 2015 taxi trips: 8 M medallion keys (paper scale), moderate
/// activity skew (busy cabs complete more trips). value alternates semantics
/// by query: fare (Query 1) or distance (Query 2).
class DebsTaxiSource final : public ZipfKeyedSource {
 public:
  enum class Query { kFare, kDistance };

  DebsTaxiSource(Params params, Query query);
  const char* name() const override { return "DEBS"; }

 protected:
  double NextValue(Rng& rng) override;

 private:
  Query query_;
};

/// \brief Google Cluster Monitoring: 600 k job keys with heavy-tailed event
/// counts (long-running services dominate). value = normalized CPU usage.
class GcmSource final : public ZipfKeyedSource {
 public:
  explicit GcmSource(Params params);
  const char* name() const override { return "GCM"; }

 protected:
  double NextValue(Rng& rng) override;
};

/// \brief TPC-H LineItem order stream: 1 M part keys, near-uniform popularity
/// with mild skew. value = order quantity (1..50), per TPC-H Q1/Q6-style
/// windowed summaries.
class TpchLineItemSource final : public ZipfKeyedSource {
 public:
  explicit TpchLineItemSource(Params params);
  const char* name() const override { return "TPC-H"; }

 protected:
  double NextValue(Rng& rng) override;
};

/// \brief Factory with each dataset's Table-1 default parameters.
enum class DatasetId { kTweets, kSynD, kDebs, kGcm, kTpch };

/// \param cardinality_scale multiplies each dataset's Table-1 cardinality.
/// Benchmarks use < 1 to preserve the paper's tuples-per-key regime at
/// reproduction-scale batch sizes (documented in EXPERIMENTS.md).
std::unique_ptr<TupleSource> MakeDataset(
    DatasetId id, std::shared_ptr<const RateProfile> rate, uint64_t seed = 42,
    double synd_zipf = 1.0, double cardinality_scale = 1.0);

const char* DatasetName(DatasetId id);

}  // namespace prompt
