#include "workload/text_sources.h"

#include <algorithm>

namespace prompt {

WordStreamSource::WordStreamSource(Params params)
    : params_(std::move(params)),
      rng_(params_.seed),
      zipf_(params_.vocabulary, params_.zipf) {
  PROMPT_CHECK_MSG(params_.rate != nullptr, "source requires a rate profile");
}

bool WordStreamSource::Next(Tuple* t) {
  const double rate = params_.rate->RateAt(static_cast<TimeMicros>(now_));
  now_ += 1e6 / rate;
  if (words_left_ == 0) {
    words_left_ = 8 + static_cast<uint32_t>(rng_.NextBounded(13));
    tweet_ts_ = static_cast<TimeMicros>(now_);
  }
  --words_left_;
  const uint64_t rank = zipf_.Sample(rng_);
  t->ts = tweet_ts_;
  t->key = dictionary_.Intern(SynthesizeWord(rank));
  t->value = 1.0;
  return true;
}

MedallionTripSource::MedallionTripSource(Params params)
    : params_(std::move(params)),
      rng_(params_.seed),
      zipf_(params_.medallions, params_.zipf) {
  PROMPT_CHECK_MSG(params_.rate != nullptr, "source requires a rate profile");
}

bool MedallionTripSource::Next(Tuple* t) {
  const double rate = params_.rate->RateAt(static_cast<TimeMicros>(now_));
  now_ += 1e6 / rate;
  const uint64_t rank = zipf_.Sample(rng_);
  t->ts = static_cast<TimeMicros>(now_);
  t->key = dictionary_.Intern(SynthesizeMedallion(rank));
  // Trip fare: base + metered tail, capped like the DEBS data.
  t->value = std::min(2.5 + rng_.NextExponential(0.12), 120.0);
  return true;
}

}  // namespace prompt
