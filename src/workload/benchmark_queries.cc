#include "workload/benchmark_queries.h"

#include <algorithm>

namespace prompt {

namespace {

TimeMicros Scale(TimeMicros paper_time, double time_scale) {
  return std::max<TimeMicros>(
      Millis(100),
      static_cast<TimeMicros>(static_cast<double>(paper_time) * time_scale));
}

JobSpec CountJob() {
  JobSpec job;
  job.map = std::make_shared<CountMap>();
  job.reduce = std::make_shared<SumReduce>();
  return job;
}

JobSpec SumJob() {
  JobSpec job;
  job.map = std::make_shared<ValueMap>();
  job.reduce = std::make_shared<SumReduce>();
  return job;
}

}  // namespace

std::vector<BenchmarkWorkload> PaperWorkloads(double time_scale) {
  std::vector<BenchmarkWorkload> workloads;

  // WordCount: sliding count over 30 seconds (already seconds-scale in the
  // paper; keep as-is).
  {
    BenchmarkWorkload w;
    w.name = "WordCount";
    w.dataset = DatasetId::kTweets;
    w.job = CountJob();
    w.window = Seconds(30);
    w.slide = Seconds(1);
    w.description = "sliding word count over 30s (Tweets)";
    workloads.push_back(w);
  }
  // TopKCount: k most frequent words over the past 30 seconds.
  {
    BenchmarkWorkload w;
    w.name = "TopKCount";
    w.dataset = DatasetId::kTweets;
    w.job = CountJob();
    w.window = Seconds(30);
    w.slide = Seconds(1);
    w.top_k = 10;
    w.description = "10 most frequent words over 30s (Tweets)";
    workloads.push_back(w);
  }
  // DEBS Query 1: total fare per taxi, 2h window / 5min slide.
  {
    BenchmarkWorkload w;
    w.name = "DebsQ1";
    w.dataset = DatasetId::kDebs;
    w.job = SumJob();
    w.window = Scale(2 * 60 * Seconds(60), time_scale);
    w.slide = Scale(5 * Seconds(60), time_scale);
    w.description = "total fare per taxi, 2h window / 5min slide (scaled)";
    workloads.push_back(w);
  }
  // DEBS Query 2: total distance per taxi, 45min window / 1min slide.
  {
    BenchmarkWorkload w;
    w.name = "DebsQ2";
    w.dataset = DatasetId::kDebs;
    w.job = SumJob();
    w.window = Scale(45 * Seconds(60), time_scale);
    w.slide = Scale(Seconds(60), time_scale);
    w.description = "total distance per taxi, 45min/1min (scaled)";
    workloads.push_back(w);
  }
  // GCM: aggregate CPU usage per job (queries "similar to [25]").
  {
    BenchmarkWorkload w;
    w.name = "GcmUsage";
    w.dataset = DatasetId::kGcm;
    w.job = SumJob();
    w.window = Scale(10 * Seconds(60), time_scale);
    w.slide = Scale(Seconds(60), time_scale);
    w.description = "total CPU usage per job, 10min/1min (scaled)";
    workloads.push_back(w);
  }
  // TPC-H Q1-style: quantity per part over the past hour, 1min slide.
  {
    BenchmarkWorkload w;
    w.name = "TpchQ1";
    w.dataset = DatasetId::kTpch;
    w.job = SumJob();
    w.window = Scale(60 * Seconds(60), time_scale);
    w.slide = Scale(Seconds(60), time_scale);
    w.description = "quantity per part over 1h / 1min slide (scaled)";
    workloads.push_back(w);
  }
  // TPC-H Q6-style: discounted revenue for qualifying items (filter + sum).
  {
    BenchmarkWorkload w;
    w.name = "TpchQ6";
    w.dataset = DatasetId::kTpch;
    JobSpec job;
    job.map = std::make_shared<FilterMap>(
        [](const Tuple& t) { return t.value >= 5 && t.value < 25; });
    job.reduce = std::make_shared<SumReduce>();
    w.job = job;
    w.window = Scale(60 * Seconds(60), time_scale);
    w.slide = Scale(Seconds(60), time_scale);
    w.description =
        "summed quantity for items with 5 <= quantity < 25 (Q6-style filter)";
    workloads.push_back(w);
  }

  for (BenchmarkWorkload& w : workloads) {
    w.job.window_batches =
        static_cast<uint32_t>(std::max<TimeMicros>(1, w.window / w.slide));
  }
  return workloads;
}

Result<BenchmarkWorkload> WorkloadByName(const std::string& name,
                                         double time_scale) {
  for (BenchmarkWorkload& w : PaperWorkloads(time_scale)) {
    if (w.name == name) return std::move(w);
  }
  return Status::Invalid("unknown workload: " + name +
                         " (try WordCount, TopKCount, DebsQ1, DebsQ2, "
                         "GcmUsage, TpchQ1, TpchQ6)");
}

}  // namespace prompt
