// Multi-receiver support: merges several ordered tuple streams into one
// timestamp-ordered stream (the engine's Stream Receiver SR_1 in Fig. 1 can
// front multiple upstream feeds).
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "common/macros.h"
#include "workload/source.h"

namespace prompt {

/// \brief K-way merge of timestamp-ordered sources.
///
/// Each constituent source must produce non-decreasing timestamps; the
/// merge then yields a globally non-decreasing stream. A source that
/// exhausts (Next() == false) simply drops out of the merge.
class CompositeSource final : public TupleSource {
 public:
  explicit CompositeSource(std::vector<TupleSource*> sources)
      : sources_(std::move(sources)) {
    PROMPT_CHECK(!sources_.empty());
    for (size_t i = 0; i < sources_.size(); ++i) {
      Tuple t;
      if (sources_[i]->Next(&t)) {
        heap_.push(Head{t, i});
      }
    }
  }

  const char* name() const override { return "Composite"; }

  uint64_t cardinality() const override {
    uint64_t total = 0;
    for (const TupleSource* s : sources_) total += s->cardinality();
    return total;
  }

  bool Next(Tuple* t) override {
    if (heap_.empty()) return false;
    Head head = heap_.top();
    heap_.pop();
    *t = head.tuple;
    Tuple next;
    if (sources_[head.index]->Next(&next)) {
      heap_.push(Head{next, head.index});
    }
    return true;
  }

  size_t active_sources() const { return heap_.size(); }

 private:
  struct Head {
    Tuple tuple;
    size_t index;
    bool operator>(const Head& other) const {
      return tuple.ts != other.tuple.ts ? tuple.ts > other.tuple.ts
                                        : index > other.index;
    }
  };

  std::vector<TupleSource*> sources_;
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap_;
};

}  // namespace prompt
