// Bounded out-of-order arrival and its antidote. The model (§2.1) assumes
// tuples arrive in timestamp order with a bounded source-to-ingestion delay;
// §8 handles ordering "at a coarse granularity, where a maximum delay ...
// can be defined [for] all delayed tuples from the source to be included in
// the correct batch". DisorderedSource injects bounded disorder for testing;
// ReorderBuffer restores order up to that maximum delay, dropping (and
// counting) anything later — the revision-tuple territory the paper leaves
// outside the engine.
#pragma once

#include <algorithm>
#include <memory>
#include <queue>
#include <vector>

#include "common/random.h"
#include "workload/source.h"

namespace prompt {

/// \brief Wraps an ordered source and releases its tuples with bounded
/// timestamp disorder: each tuple may be overtaken by others for up to
/// `max_displacement` positions, so timestamps regress by a bounded amount.
class DisorderedSource final : public TupleSource {
 public:
  DisorderedSource(TupleSource* inner, size_t max_displacement,
                   uint64_t seed = 7)
      : inner_(inner), window_(max_displacement + 1), rng_(seed) {
    PROMPT_CHECK(inner != nullptr);
    Refill();
  }

  const char* name() const override { return "Disordered"; }
  uint64_t cardinality() const override { return inner_->cardinality(); }

  bool Next(Tuple* t) override {
    if (buffer_.empty()) return false;
    // Emit either the overdue oldest element (hard displacement bound) or a
    // random one. Without the age rule a tuple could linger geometrically
    // long and displacement would be unbounded.
    size_t oldest = 0;
    for (size_t i = 1; i < buffer_.size(); ++i) {
      if (buffer_[i].seq < buffer_[oldest].seq) oldest = i;
    }
    size_t pick;
    if (emit_seq_ - buffer_[oldest].seq >= window_ - 1) {
      pick = oldest;
    } else {
      pick = rng_.NextBounded(buffer_.size());
    }
    *t = buffer_[pick].tuple;
    buffer_[pick] = buffer_.back();
    buffer_.pop_back();
    ++emit_seq_;
    Tuple next;
    if (inner_->Next(&next)) {
      buffer_.push_back(Entry{next, enter_seq_++});
    }
    return true;
  }

 private:
  struct Entry {
    Tuple tuple;
    uint64_t seq;
  };

  void Refill() {
    Tuple t;
    while (buffer_.size() < window_ && inner_->Next(&t)) {
      buffer_.push_back(Entry{t, enter_seq_++});
    }
  }

  TupleSource* inner_;
  size_t window_;
  Rng rng_;
  std::vector<Entry> buffer_;
  uint64_t enter_seq_ = 0;
  uint64_t emit_seq_ = 0;
};

/// \brief Watermark reorder buffer in front of the batching layer.
///
/// Tuples are held until the watermark (max timestamp seen minus
/// `max_delay`) passes them, then released in exact timestamp order. A tuple
/// older than the watermark at arrival is *late*: it is dropped and counted
/// (the paper's engine excludes such tuples; revision processing [15] would
/// handle them upstream).
class ReorderBuffer final : public TupleSource {
 public:
  ReorderBuffer(TupleSource* inner, TimeMicros max_delay)
      : inner_(inner), max_delay_(max_delay) {
    PROMPT_CHECK(inner != nullptr);
    PROMPT_CHECK(max_delay >= 0);
  }

  const char* name() const override { return "Reordered"; }
  uint64_t cardinality() const override { return inner_->cardinality(); }

  bool Next(Tuple* t) override {
    while (true) {
      // Release the head once the watermark passed it.
      if (!heap_.empty() && heap_.top().ts <= watermark()) {
        *t = heap_.top();
        heap_.pop();
        last_released_ = t->ts;
        return true;
      }
      Tuple incoming;
      if (!inner_->Next(&incoming)) {
        // Inner stream ended: drain the buffer in order.
        if (heap_.empty()) return false;
        *t = heap_.top();
        heap_.pop();
        last_released_ = t->ts;
        return true;
      }
      if (incoming.ts < last_released_) {
        // Later than the configured maximum delay: excluded.
        ++dropped_;
        continue;
      }
      max_seen_ = std::max(max_seen_, incoming.ts);
      heap_.push(incoming);
    }
  }

  /// Tuples dropped for exceeding the maximum delay.
  uint64_t dropped() const { return dropped_; }

  size_t buffered() const { return heap_.size(); }

 private:
  TimeMicros watermark() const { return max_seen_ - max_delay_; }

  struct TsGreater {
    bool operator()(const Tuple& a, const Tuple& b) const {
      return a.ts > b.ts;
    }
  };

  TupleSource* inner_;
  TimeMicros max_delay_;
  TimeMicros max_seen_ = 0;
  TimeMicros last_released_ = 0;
  uint64_t dropped_ = 0;
  std::priority_queue<Tuple, std::vector<Tuple>, TsGreater> heap_;
};

}  // namespace prompt
