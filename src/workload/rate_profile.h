// Input data-rate profiles: constant, sinusoidal (Fig. 11's variable-rate
// experiment), and piecewise ramps (Fig. 12's elasticity experiment).
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"

namespace prompt {

/// \brief Offered load over time, in tuples per second.
class RateProfile {
 public:
  virtual ~RateProfile() = default;
  /// Instantaneous rate at time t (tuples/sec); must be > 0.
  virtual double RateAt(TimeMicros t) const = 0;
};

/// \brief Fixed rate.
class ConstantRate final : public RateProfile {
 public:
  explicit ConstantRate(double tuples_per_sec) : rate_(tuples_per_sec) {
    PROMPT_CHECK(tuples_per_sec > 0);
  }
  double RateAt(TimeMicros) const override { return rate_; }

 private:
  double rate_;
};

/// \brief Sinusoidal rate around a mean — the paper's "sinusoidal changes to
/// the input data rate" simulating variable workload spikes (§7.2).
class SinusoidalRate final : public RateProfile {
 public:
  SinusoidalRate(double mean, double amplitude_frac, TimeMicros period)
      : mean_(mean), amplitude_frac_(amplitude_frac), period_(period) {
    PROMPT_CHECK(mean > 0);
    PROMPT_CHECK(amplitude_frac >= 0 && amplitude_frac < 1);
    PROMPT_CHECK(period > 0);
  }
  double RateAt(TimeMicros t) const override {
    const double phase = 2.0 * 3.14159265358979323846 *
                         static_cast<double>(t % period_) /
                         static_cast<double>(period_);
    return mean_ * (1.0 + amplitude_frac_ * std::sin(phase));
  }

 private:
  double mean_;
  double amplitude_frac_;
  TimeMicros period_;
};

/// \brief Piecewise-linear rate through (time, rate) knots; clamps outside.
class PiecewiseRate final : public RateProfile {
 public:
  struct Knot {
    TimeMicros t;
    double rate;
  };
  explicit PiecewiseRate(std::vector<Knot> knots) : knots_(std::move(knots)) {
    PROMPT_CHECK(!knots_.empty());
    for (size_t i = 1; i < knots_.size(); ++i) {
      PROMPT_CHECK(knots_[i].t > knots_[i - 1].t);
    }
  }
  double RateAt(TimeMicros t) const override {
    if (t <= knots_.front().t) return knots_.front().rate;
    if (t >= knots_.back().t) return knots_.back().rate;
    for (size_t i = 1; i < knots_.size(); ++i) {
      if (t <= knots_[i].t) {
        const double f = static_cast<double>(t - knots_[i - 1].t) /
                         static_cast<double>(knots_[i].t - knots_[i - 1].t);
        return knots_[i - 1].rate + f * (knots_[i].rate - knots_[i - 1].rate);
      }
    }
    return knots_.back().rate;
  }

 private:
  std::vector<Knot> knots_;
};

/// \brief Multiplies an underlying profile by a scale factor (used by the
/// back-pressure probe to sweep offered load without rebuilding sources).
class ScaledRate final : public RateProfile {
 public:
  ScaledRate(std::shared_ptr<const RateProfile> base, double scale)
      : base_(std::move(base)), scale_(scale) {
    PROMPT_CHECK(scale > 0);
  }
  double RateAt(TimeMicros t) const override {
    return base_->RateAt(t) * scale_;
  }

 private:
  std::shared_ptr<const RateProfile> base_;
  double scale_;
};

}  // namespace prompt
