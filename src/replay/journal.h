// Flight recorder (DESIGN.md §16): an append-only run journal that captures
// everything needed to reproduce a run bit-identically — the raw tuple
// stream (key-run encoded), per-batch outcome fingerprints (time-series
// signals, autopsy verdict, window output hash), adaptive-switch decisions,
// fault firings and the effective engine options — in the durable store's
// segment format (store/segment.h: "PSG1" header, CRC32C-framed records,
// torn tails truncated on open).
//
// A journal directory holds numbered `seg-NNNNNN.log` files whose record
// payloads share the DurableBlockStore convention:
//   [kind u8][owner u32][batch_id u64][body]
// with journal-specific kinds (disjoint from the store's put/tombstone).
// `owner` is 0 for the single-tenant engine and the tenant index under the
// multi-tenant engine; the tuple stream is always recorded once, pre-fan-out
// (owner 0).
//
// Every engine construction appends a run-start marker, so one directory
// records a whole crash/restart lineage: replay partitions the record
// stream into *attempts* and drives one fresh engine per attempt, exactly
// as the recorded processes ran.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/partitioner.h"
#include "model/job.h"
#include "model/tuple.h"
#include "obs/autopsy.h"
#include "obs/batch_report.h"
#include "obs/timeseries.h"
#include "store/block_store.h"
#include "workload/source.h"

namespace prompt {

/// \brief Journal record kinds. Values are disjoint from the block store's
/// put(1)/tombstone(2) so a mixed-up directory fails loudly instead of
/// decoding garbage.
enum class JournalRecordKind : uint8_t {
  kManifest = 16,     ///< key=value text: the effective run configuration
  kRunStart = 17,     ///< one per engine construction (an "attempt")
  kBatchTuples = 18,  ///< key-run encoded tuples consumed for one batch
  kOutcome = 19,      ///< one published batch's deterministic fingerprint
  kSwitch = 20,       ///< adaptive technique switch decided after a batch
  kFault = 21,        ///< fault-schedule event that actually fired
  kBatchEnv = 22,     ///< wall-clock inputs measured for one sealed batch
};

/// \brief The wall-clock-measured inputs that feed one batch's report: the
/// partitioner decision cost (Stopwatch around Seal) and the sharded-ingest
/// stall/merge/occupancy numbers. Everything else the engine computes is a
/// pure function of (tuples, options), but these are measured — so the
/// recorder journals them and replay injects the recorded values instead of
/// re-measuring. That is what makes latency/W/overflow signals and the
/// autopsy verdict bit-identical, not merely close.
struct BatchEnv {
  uint64_t batch_id = 0;
  TimeMicros partition_cost = 0;  ///< effective cost (k-way merge included)
  TimeMicros seal_barrier_latency = 0;  ///< zeros when ingest is unsharded
  TimeMicros merge_latency = 0;
  uint64_t ring_high_water = 0;  ///< worst shard's occupancy sample
  uint64_t ring_capacity = 0;
};

/// Recorded BatchEnv values keyed by (owner, batch id) — what a replaying
/// engine injects in place of its own wall-clock measurements.
using ReplayEnv = std::map<std::pair<uint32_t, uint64_t>, BatchEnv>;

/// \brief Settles a just-sealed batch's wall-clock inputs: under replay
/// (`inject` holds this owner+batch) the recorded partition cost overwrites
/// the measured one and the recorded ingest numbers are returned; otherwise
/// the measured values (worst shard's occupancy sample from `metrics`, null
/// when ingest is unsharded) are captured for the journal. Both engines
/// call this right after Seal, so record→replay→re-replay chains exactly.
BatchEnv SettleBatchEnv(const std::shared_ptr<const ReplayEnv>& inject,
                        uint32_t owner, PartitionedBatch* batch,
                        const IngestMetrics* metrics);

/// \brief Replay-side counterpart over the published report: overwrites the
/// measured seal-barrier/merge latencies and collapses the per-shard ring
/// samples onto shard 0 with the recorded pair, preserving the occupancy
/// max bit-for-bit. No-op unless `inject` holds this owner+batch.
void InjectIngestEnv(const std::shared_ptr<const ReplayEnv>& inject,
                     uint32_t owner, const BatchEnv& env, BatchReport* report);

/// \brief Journal configuration (EngineOptions::journal).
struct JournalOptions {
  /// Journal directory; empty disables recording entirely.
  std::string dir;
  /// When appended records reach disk. kBatch syncs once per published
  /// batch, mirroring the durable store's default.
  FsyncPolicy fsync = FsyncPolicy::kBatch;
  /// Roll to a new segment once the active one reaches this size.
  size_t segment_bytes = 8u << 20;
  /// Declarative query text recorded in the manifest (promptctl sets this)
  /// so replay can recompile the job; empty = replay falls back to the
  /// manifest's window_batches over JobSpec::WordCount.
  std::string query;
  /// Replay mode: recorded wall-clock inputs for this engine lifetime
  /// (one attempt), injected in place of fresh measurements. Null outside
  /// --replay. Orthogonal to `dir` — a replaying engine usually re-records.
  std::shared_ptr<const ReplayEnv> inject;

  bool enabled() const { return !dir.empty(); }
};

/// \brief Ordered key=value run configuration, written once as the first
/// record of a fresh journal. Order-preserving so record and replay produce
/// byte-identical manifests.
class JournalManifest {
 public:
  void Set(const std::string& key, const std::string& value);
  /// Without this overload a string literal would convert to bool (a
  /// standard conversion outranks constructing std::string) and every
  /// literal-valued key would journal as "0"/"1".
  void Set(const std::string& key, const char* value);
  void Set(const std::string& key, uint64_t value);
  void Set(const std::string& key, int64_t value);
  void Set(const std::string& key, double value);
  void Set(const std::string& key, bool value);

  /// nullptr when absent.
  const std::string* Find(const std::string& key) const;
  std::string Get(const std::string& key, const std::string& fallback) const;
  uint64_t GetUint(const std::string& key, uint64_t fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// All pairs whose key equals `key`, in insertion order (tenant specs).
  std::vector<std::string> GetAll(const std::string& key) const;

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  std::string Serialize() const;  ///< "key=value\n" lines
  static Result<JournalManifest> Parse(const std::string& text);

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// \brief One published batch's deterministic fingerprint: everything the
/// replay acceptance check compares bit-for-bit. Doubles are compared by
/// bit pattern, never by epsilon — replay is exact or it is wrong.
struct BatchOutcome {
  uint64_t batch_id = 0;
  /// Order-independent hash of the batch's per-key window contribution:
  /// equal hashes on every batch imply equal window aggregates.
  uint64_t output_hash = 0;
  /// The full TimeSeriesStore point derived from the batch report.
  std::array<double, kTimeSeriesSignals> signals{};
  // Trace-span reconstruction inputs not covered by the signals above
  // (latency = interval + queue + overflow + map + reduce + extras).
  TimeMicros map_makespan = 0;
  TimeMicros reduce_makespan = 0;
  TimeMicros partition_overflow = 0;
  int32_t technique = -1;
  bool technique_switched = false;
  int32_t switched_from = -1;
  // Autopsy verdict (ExplainBatch over the same report).
  BatchCause dominant = BatchCause::kNone;
  TimeMicros total_excess = 0;
  TimeMicros threshold = 0;
  std::array<TimeMicros, kBatchCauses> excess{};

  bool BitIdentical(const BatchOutcome& other) const;
};

/// Derives the journaled fingerprint from a published report + its verdict.
BatchOutcome OutcomeFrom(const BatchReport& report, const BatchAutopsy& autopsy);

/// Order-independent FNV/mix hash of a batch's per-key output (the window
/// contribution). Commutative so block emission order cannot matter.
uint64_t HashBatchOutput(const std::vector<KV>& output);

/// \brief One adaptive-switch decision as journaled.
struct JournalSwitch {
  uint32_t owner = 0;
  uint64_t after_batch = 0;
  int32_t from = -1;
  int32_t to = -1;
  std::string reason;

  bool operator==(const JournalSwitch& other) const {
    return owner == other.owner && after_batch == other.after_batch &&
           from == other.from && to == other.to && reason == other.reason;
  }
};

/// \brief One fault-schedule firing as journaled.
struct JournalFault {
  uint64_t batch_id = 0;
  uint8_t point = 0;   ///< FaultPoint
  uint8_t kind = 0;    ///< FaultKind
  uint32_t target = 0;
};

/// \brief The records between two run-start markers: one engine lifetime.
struct JournalAttempt {
  /// The constructing run's options manifest. Every JournalWriter::Open
  /// appends one, so lineages where restarts change options (e.g. run 1
  /// schedules a crash fault, run 2 does not) replay each attempt under its
  /// own configuration. Empty only for attempts synthesized from stray
  /// records that precede any run-start marker.
  JournalManifest manifest;
  /// Tuple stream in consumption order (concatenated kBatchTuples bodies).
  std::vector<Tuple> tuples;
  /// Published-batch fingerprints per owner (tenant index; 0 single-tenant).
  std::map<uint32_t, std::vector<BatchOutcome>> outcomes;
  std::vector<JournalSwitch> switches;
  std::vector<JournalFault> faults;
  /// Wall-clock inputs per sealed batch, keyed by (owner, batch id).
  ReplayEnv envs;

  /// Batches the attempt published for owner 0 (every owner publishes once
  /// per heartbeat, so this is the heartbeat count).
  size_t published_batches() const;
  /// True when a crash fault fired during this attempt.
  bool crashed() const;
};

/// \brief A fully parsed journal directory.
struct JournalData {
  JournalManifest manifest;
  std::vector<JournalAttempt> attempts;
  /// Torn-tail records dropped across all segments (crash evidence).
  uint64_t torn_records = 0;

  /// Every attempt's tuples concatenated (the scenario-source view).
  std::vector<Tuple> AllTuples() const;
  /// Every attempt's outcomes concatenated per owner (the diff view).
  std::map<uint32_t, std::vector<BatchOutcome>> AllOutcomes() const;
  std::vector<JournalSwitch> AllSwitches() const;
};

/// \brief Parses every segment of a journal directory, truncation-tolerant:
/// torn tails are dropped and counted, never decoded. Fails only on IO
/// errors or a structurally alien directory (no manifest).
Result<JournalData> ReadJournal(const std::string& dir);

/// \brief The recorder: an append-only segment log of journal records.
/// Thread-compatible, like the engine run loop that drives it.
class JournalWriter {
 public:
  /// Opens `options.dir` (creating it if needed). An existing journal is
  /// scanned, its torn tail truncated, and appending resumes. Either way
  /// `manifest` (this engine lifetime's configuration) and a run-start
  /// marker are appended before this returns, so every attempt in a
  /// lineage carries the options that actually produced it.
  static Result<std::unique_ptr<JournalWriter>> Open(
      const JournalOptions& options, const JournalManifest& manifest);
  ~JournalWriter();
  PROMPT_DISALLOW_COPY_AND_ASSIGN(JournalWriter);

  /// Buffers one consumed tuple (the ingest tap, pre-shard-routing).
  void RecordTuple(const Tuple& t) { buffer_.push_back(t); }

  /// Seals the buffered tuples into one key-run encoded kBatchTuples record
  /// and clears the buffer. Called at batch seal, before processing.
  Status AppendBatchTuples(uint64_t batch_id);

  Status AppendOutcome(uint32_t owner, const BatchOutcome& outcome);
  Status AppendSwitch(const JournalSwitch& decision);
  Status AppendFault(const JournalFault& fault);
  Status AppendEnv(uint32_t owner, const BatchEnv& env);

  /// fsyncs the active segment (the kBatch policy's per-batch call).
  Status Sync();
  /// Sync() iff the policy is kBatch — the engine's once-per-batch hook.
  Status SyncBatch();

  /// Bytes appended but not yet fsynced (the /healthz journal-lag gauge).
  uint64_t unsynced_bytes() const;
  uint64_t appended_bytes() const { return appended_bytes_; }
  /// True when Open() created the directory (and wrote the manifest).
  bool fresh() const { return fresh_; }
  const JournalOptions& options() const { return options_; }

 private:
  explicit JournalWriter(JournalOptions options);

  Status Append(JournalRecordKind kind, uint32_t owner, uint64_t batch_id,
                const std::string& body);
  Result<SegmentWriter*> ActiveSegment();

  JournalOptions options_;
  std::vector<Tuple> buffer_;
  /// The newest segment, open for append; sealed segments are fsynced and
  /// closed when the log rolls.
  std::unique_ptr<SegmentWriter> active_;
  uint64_t active_id_ = 0;
  uint64_t appended_bytes_ = 0;
  bool fresh_ = false;
};

/// \brief A TupleSource over a journal's recorded stream: replays the exact
/// tuples, with their original timestamps, in consumption order. The engine
/// re-derives every batch boundary from `ts < end`, so batches re-form
/// identically at any ingest shard count.
class JournalTupleSource : public TupleSource {
 public:
  explicit JournalTupleSource(std::vector<Tuple> tuples);

  const char* name() const override { return "journal-replay"; }
  bool Next(Tuple* out) override;
  uint64_t cardinality() const override { return cardinality_; }

 private:
  std::vector<Tuple> tuples_;
  size_t pos_ = 0;
  uint64_t cardinality_ = 0;
};

}  // namespace prompt
