// Run-diff autopsy (DESIGN.md §16): compares two journals' per-batch
// outcome streams — time-series signals, trace-span inputs, autopsy
// verdicts, window output hashes and the adaptive-switch sequence — and
// pinpoints the first divergent batch with a per-field delta table. The
// report renders through the standard RecordSink path, so one writer serves
// the human table (promptctl --diff), JSONL artifacts and tests.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/sink.h"
#include "replay/journal.h"

namespace prompt {

/// \brief One differing field at the first divergent batch.
struct DiffField {
  std::string field;    ///< signal/verdict/technique/... wire name
  std::string a;        ///< rendered value in journal A
  std::string b;        ///< rendered value in journal B
  double delta_pct = 0; ///< (b-a)/|a| * 100 for numeric fields, else 0
  bool numeric = false;
};

/// \brief The comparison verdict over two journals.
struct JournalDiff {
  /// Every owner's outcome stream and the switch sequence matched
  /// bit-for-bit (manifest differences are reported as notes only).
  bool identical = true;
  /// Batches compared bit-identically across all owners.
  uint64_t identical_batches = 0;
  /// Owner (tenant index) and batch id of the earliest divergence.
  uint32_t divergent_owner = 0;
  uint64_t first_divergent_batch = UINT64_MAX;
  /// Field-by-field delta table at the first divergent batch; empty when
  /// the divergence is a missing batch/owner rather than a changed one.
  std::vector<DiffField> fields;
  /// Shape and configuration notes (manifest deltas, attempt/owner/batch
  /// count mismatches, switch-sequence deltas).
  std::vector<std::string> notes;
  /// One-line human verdict ("journals identical over N batches" /
  /// "first divergence at batch K (owner 0): ...").
  std::string summary;
};

/// \brief Compares two parsed journals (A = baseline, B = candidate).
JournalDiff DiffJournals(const JournalData& a, const JournalData& b);

/// \brief Emits the diff as records: one `diff_field` row per differing
/// field (columns field/a/b/delta_pct) plus one `diff_note` row per note.
void WriteDiffRecords(const JournalDiff& diff, RecordSink* sink);

/// \brief Human-readable report: the summary line, the delta table and the
/// notes (what promptctl --diff prints).
void WriteDiffText(const JournalDiff& diff, std::ostream* out);

}  // namespace prompt
