#include "replay/replayer.h"

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baselines/factory.h"
#include "core/accumulator_api.h"
#include "engine/engine.h"
#include "fault/fault_injector.h"
#include "model/job.h"
#include "query/multi_query.h"
#include "query/parser.h"
#include "store/block_store.h"
#include "tenant/multi_tenant_engine.h"

namespace prompt {
namespace {

namespace fs = std::filesystem;

Result<AccumulatorKind> AccumulatorKindFromName(const std::string& name) {
  if (name == "flat") return AccumulatorKind::kFlat;
  if (name == "legacy") return AccumulatorKind::kLegacyChain;
  return Status::Invalid("replay: unknown accumulator kind '" + name + "'");
}

Result<std::vector<PartitionerType>> CandidatesFromCsv(const std::string& csv) {
  std::vector<PartitionerType> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    PROMPT_ASSIGN_OR_RETURN(PartitionerType t, PartitionerTypeFromName(item));
    out.push_back(t);
  }
  if (out.empty()) {
    return Status::Invalid("replay: empty adapt.candidates list");
  }
  return out;
}

CostModelParams CostFromManifest(const JournalManifest& m) {
  CostModelParams c;
  c.map_task_fixed_us = m.GetDouble("cost.map_task_fixed_us", c.map_task_fixed_us);
  c.map_per_tuple_us = m.GetDouble("cost.map_per_tuple_us", c.map_per_tuple_us);
  c.map_per_key_us = m.GetDouble("cost.map_per_key_us", c.map_per_key_us);
  c.reduce_task_fixed_us =
      m.GetDouble("cost.reduce_task_fixed_us", c.reduce_task_fixed_us);
  c.reduce_per_tuple_us =
      m.GetDouble("cost.reduce_per_tuple_us", c.reduce_per_tuple_us);
  c.reduce_per_cluster_us =
      m.GetDouble("cost.reduce_per_cluster_us", c.reduce_per_cluster_us);
  c.partition_cost_scale =
      m.GetDouble("cost.partition_cost_scale", c.partition_cost_scale);
  c.replicate_per_kib_us =
      m.GetDouble("cost.replicate_per_kib_us", c.replicate_per_kib_us);
  return c;
}

Result<PartitionerConfig> PartitionerConfigFromManifest(
    const JournalManifest& m) {
  PartitionerConfig config;
  PROMPT_ASSIGN_OR_RETURN(
      config.prompt.accumulator_kind,
      AccumulatorKindFromName(m.Get("partitioner.accumulator", "flat")));
  config.prompt.post_sort = m.GetBool("partitioner.post_sort", false);
  config.cam_candidates = static_cast<uint32_t>(
      m.GetUint("partitioner.cam_candidates", config.cam_candidates));
  config.sketch_capacity = static_cast<size_t>(
      m.GetUint("partitioner.sketch_capacity", config.sketch_capacity));
  return config;
}

Status IngestFromManifest(const JournalManifest& m, IngestOptions* ingest) {
  ingest->shards = static_cast<uint32_t>(m.GetUint("ingest.shards", 1));
  ingest->ring_capacity =
      static_cast<size_t>(m.GetUint("ingest.ring_capacity", 16 * 1024));
  PROMPT_ASSIGN_OR_RETURN(
      ingest->accumulator,
      AccumulatorKindFromName(m.Get("ingest.accumulator", "flat")));
  return Status::OK();
}

Status ObsFromManifest(const JournalManifest& m, ObservabilityOptions* obs) {
  obs->collect_partition_metrics =
      m.GetBool("obs.collect_partition_metrics", false);
  obs->autopsy.min_excess_frac =
      m.GetDouble("obs.autopsy.min_excess_frac", obs->autopsy.min_excess_frac);
  obs->autopsy.min_excess_us = static_cast<TimeMicros>(
      m.GetInt("obs.autopsy.min_excess_us", obs->autopsy.min_excess_us));
  obs->autopsy.ring_pressure_threshold = m.GetDouble(
      "obs.autopsy.ring_pressure_threshold",
      obs->autopsy.ring_pressure_threshold);
  return Status::OK();
}

Status StoreFromManifest(const JournalManifest& m, const std::string& dir,
                         StoreOptions* store) {
  // Non-dir knobs parse even for store-less runs so the re-recorded
  // manifest round-trips byte-identically; the dir (and with it the store)
  // is only set when the recorded run actually had one.
  if (m.GetBool("store.enabled", false)) store->dir = dir;
  PROMPT_ASSIGN_OR_RETURN(
      store->fsync, ParseFsyncPolicy(m.Get("store.fsync", "batch")));
  store->memory_budget_bytes =
      static_cast<size_t>(m.GetUint("store.memory_budget_bytes", 0));
  store->retain_bytes = static_cast<size_t>(m.GetUint("store.retain_bytes", 0));
  store->retain_batches = m.GetUint("store.retain_batches", 0);
  return Status::OK();
}

Status FaultsFromManifest(const JournalManifest& m, FaultOptions* faults) {
  const std::string* spec = m.Find("faults");
  if (spec == nullptr) return Status::OK();
  PROMPT_ASSIGN_OR_RETURN(*faults, ParseFaultSchedule(*spec));
  faults->max_task_retries = static_cast<uint32_t>(
      m.GetUint("faults.max_task_retries", faults->max_task_retries));
  faults->retry_backoff = static_cast<TimeMicros>(
      m.GetInt("faults.retry_backoff", faults->retry_backoff));
  faults->speculation_enabled =
      m.GetBool("faults.speculation_enabled", faults->speculation_enabled);
  faults->speculation_multiplier = m.GetDouble(
      "faults.speculation_multiplier", faults->speculation_multiplier);
  return Status::OK();
}

/// Rebuilds the single-tenant EngineOptions the recorded run was constructed
/// with. Every key here mirrors one Set() in the engine's manifest builder;
/// the ReplayResult::manifest_match check catches any drift between the two.
Result<EngineOptions> SingleOptionsFromManifest(const JournalManifest& m,
                                                const std::string& store_dir) {
  EngineOptions o;
  o.batch_interval = m.GetInt("batch_interval", o.batch_interval);
  o.map_tasks = static_cast<uint32_t>(m.GetUint("map_tasks", o.map_tasks));
  o.reduce_tasks =
      static_cast<uint32_t>(m.GetUint("reduce_tasks", o.reduce_tasks));
  o.cores = static_cast<uint32_t>(m.GetUint("cores", o.cores));
  o.cores_track_tasks = m.GetBool("cores_track_tasks", o.cores_track_tasks);
  o.early_release_frac = m.GetDouble("early_release_frac", o.early_release_frac);
  o.cost = CostFromManifest(m);
  o.mode = m.Get("exec_mode", "simulated") == "real" ? ExecutionMode::kReal
                                                     : ExecutionMode::kSimulated;
  o.use_prompt_reduce = m.GetBool("use_prompt_reduce", o.use_prompt_reduce);
  o.unstable_queue_intervals =
      m.GetDouble("unstable_queue_intervals", o.unstable_queue_intervals);

  o.elasticity_enabled = m.GetBool("elasticity_enabled", false);
  ElasticityOptions& e = o.elasticity;
  e.threshold = m.GetDouble("elasticity.threshold", e.threshold);
  e.step = m.GetDouble("elasticity.step", e.step);
  e.d = static_cast<int>(m.GetInt("elasticity.d", e.d));
  e.min_map_tasks =
      static_cast<uint32_t>(m.GetUint("elasticity.min_map_tasks", e.min_map_tasks));
  e.min_reduce_tasks = static_cast<uint32_t>(
      m.GetUint("elasticity.min_reduce_tasks", e.min_reduce_tasks));
  e.max_map_tasks =
      static_cast<uint32_t>(m.GetUint("elasticity.max_map_tasks", e.max_map_tasks));
  e.max_reduce_tasks = static_cast<uint32_t>(
      m.GetUint("elasticity.max_reduce_tasks", e.max_reduce_tasks));
  e.trend_lookback =
      static_cast<int>(m.GetInt("elasticity.trend_lookback", e.trend_lookback));

  AdaptiveOptions& a = o.adapt;
  a.enabled = m.GetBool("adapt.enabled", false);
  a.d = static_cast<int>(m.GetInt("adapt.d", a.d));
  a.grace = static_cast<int>(m.GetInt("adapt.grace", a.grace));
  a.window = static_cast<uint32_t>(m.GetUint("adapt.window", a.window));
  a.calm_block_load_ratio =
      m.GetDouble("adapt.calm_block_load_ratio", a.calm_block_load_ratio);
  a.calm_split_key_frac =
      m.GetDouble("adapt.calm_split_key_frac", a.calm_split_key_frac);
  if (const std::string* csv = m.Find("adapt.candidates")) {
    PROMPT_ASSIGN_OR_RETURN(a.candidates, CandidatesFromCsv(*csv));
  }
  PROMPT_ASSIGN_OR_RETURN(a.config, PartitionerConfigFromManifest(m));

  PROMPT_RETURN_NOT_OK(ObsFromManifest(m, &o.obs));
  PROMPT_RETURN_NOT_OK(FaultsFromManifest(m, &o.faults));

  o.replicate_input = m.GetBool("replicate_input", o.replicate_input);
  o.cluster_enabled = m.GetBool("cluster_enabled", o.cluster_enabled);
  ClusterOptions& cl = o.cluster;
  cl.nodes = static_cast<uint32_t>(m.GetUint("cluster.nodes", cl.nodes));
  cl.cores_per_node =
      static_cast<uint32_t>(m.GetUint("cluster.cores_per_node", cl.cores_per_node));
  cl.replication_factor = static_cast<uint32_t>(
      m.GetUint("cluster.replication_factor", cl.replication_factor));
  cl.remote_read_penalty =
      m.GetDouble("cluster.remote_read_penalty", cl.remote_read_penalty);

  PROMPT_RETURN_NOT_OK(StoreFromManifest(m, store_dir, &o.store));

  o.batch_resizing_enabled = m.GetBool("batch_resizing_enabled", false);
  BatchResizerOptions& r = o.batch_resizer;
  r.min_interval = m.GetInt("resizer.min_interval", r.min_interval);
  r.max_interval = m.GetInt("resizer.max_interval", r.max_interval);
  r.target_ratio = m.GetDouble("resizer.target_ratio", r.target_ratio);
  r.lookback = static_cast<int>(m.GetInt("resizer.lookback", r.lookback));
  r.gain = m.GetDouble("resizer.gain", r.gain);

  PROMPT_RETURN_NOT_OK(IngestFromManifest(m, &o.ingest));
  return o;
}

Result<JobSpec> JobFromManifest(const JournalManifest& m) {
  const uint32_t window_batches =
      static_cast<uint32_t>(m.GetUint("window_batches", 10));
  if (const std::string* query = m.Find("query")) {
    PROMPT_ASSIGN_OR_RETURN(CompiledQuery compiled, ParseQuery(*query));
    JobSpec job = compiled.job;
    job.window_batches = window_batches;
    return job;
  }
  return JobSpec::WordCount(window_batches);
}

Result<MultiTenantEngineOptions> MultiOptionsFromManifest(
    const JournalManifest& m, const std::string& store_dir) {
  MultiTenantEngineOptions o;
  o.batch_interval = m.GetInt("batch_interval", o.batch_interval);
  o.total_slots = static_cast<uint32_t>(m.GetUint("total_slots", o.total_slots));
  o.map_tasks = static_cast<uint32_t>(m.GetUint("map_tasks", o.map_tasks));
  o.reduce_tasks =
      static_cast<uint32_t>(m.GetUint("reduce_tasks", o.reduce_tasks));
  o.cost = CostFromManifest(m);
  o.mode = m.Get("exec_mode", "simulated") == "real" ? ExecutionMode::kReal
                                                     : ExecutionMode::kSimulated;
  o.use_prompt_reduce = m.GetBool("use_prompt_reduce", o.use_prompt_reduce);
  o.early_release_frac = m.GetDouble("early_release_frac", o.early_release_frac);
  o.unstable_queue_intervals =
      m.GetDouble("unstable_queue_intervals", o.unstable_queue_intervals);

  AdaptiveOptions& a = o.adapt_base;
  if (const std::string* csv = m.Find("adapt.candidates")) {
    PROMPT_ASSIGN_OR_RETURN(a.candidates, CandidatesFromCsv(*csv));
  }
  a.grace = static_cast<int>(m.GetInt("adapt.grace", a.grace));
  a.window = static_cast<uint32_t>(m.GetUint("adapt.window", a.window));
  a.calm_block_load_ratio =
      m.GetDouble("adapt.calm_block_load_ratio", a.calm_block_load_ratio);
  a.calm_split_key_frac =
      m.GetDouble("adapt.calm_split_key_frac", a.calm_split_key_frac);
  PROMPT_ASSIGN_OR_RETURN(a.config, PartitionerConfigFromManifest(m));

  PROMPT_RETURN_NOT_OK(ObsFromManifest(m, &o.obs));
  PROMPT_RETURN_NOT_OK(StoreFromManifest(m, store_dir, &o.store));
  PROMPT_RETURN_NOT_OK(IngestFromManifest(m, &o.ingest));
  return o;
}

Result<std::vector<TenantQuerySpec>> SpecsFromManifest(const JournalManifest& m) {
  const std::vector<std::string> lines = m.GetAll("tenant");
  if (lines.empty()) {
    return Status::Invalid("replay: multi-tenant manifest has no tenant= lines");
  }
  std::string text;
  for (const std::string& line : lines) {
    text += line;
    text += '\n';
  }
  return ParseQueryFile(text);
}

/// One recorded engine lifetime replayed: fresh engine over the attempt's
/// tuple stream, wall-clock inputs injected, re-recorded into the output
/// journal. Crashed attempts drive one extra heartbeat — the batch whose
/// crash fault (re-fired from the manifest schedule) ends the attempt.
Result<uint64_t> ReplaySingleAttempt(const JournalManifest& manifest,
                                     const JournalAttempt& attempt,
                                     const ReplayOptions& replay) {
  PROMPT_ASSIGN_OR_RETURN(
      EngineOptions options,
      SingleOptionsFromManifest(manifest, replay.output_dir + "/store"));
  PROMPT_ASSIGN_OR_RETURN(JobSpec job, JobFromManifest(manifest));

  const std::string technique_name = manifest.Get("technique", "");
  if (technique_name.empty() || technique_name == "custom") {
    return Status::Invalid(
        "replay: manifest technique '" + technique_name +
        "' does not name a factory partitioner; the run is not replayable");
  }
  PROMPT_ASSIGN_OR_RETURN(PartitionerType technique,
                          PartitionerTypeFromName(technique_name));

  options.journal.dir = replay.output_dir;
  options.journal.query = manifest.Get("query", "");
  options.journal.inject = std::make_shared<const ReplayEnv>(attempt.envs);

  JournalTupleSource source(attempt.tuples);
  MicroBatchEngine engine(options, job,
                          CreatePartitioner(technique, options.adapt.config),
                          &source);
  PROMPT_RETURN_NOT_OK(engine.init_status());

  const uint64_t heartbeats =
      attempt.published_batches() + (attempt.crashed() ? 1 : 0);
  engine.Run(static_cast<uint32_t>(heartbeats));
  return heartbeats;
}

Result<uint64_t> ReplayMultiAttempt(const JournalManifest& manifest,
                                    const JournalAttempt& attempt,
                                    const ReplayOptions& replay) {
  PROMPT_ASSIGN_OR_RETURN(
      MultiTenantEngineOptions options,
      MultiOptionsFromManifest(manifest, replay.output_dir + "/store"));
  PROMPT_ASSIGN_OR_RETURN(std::vector<TenantQuerySpec> specs,
                          SpecsFromManifest(manifest));

  options.journal.dir = replay.output_dir;
  options.journal.inject = std::make_shared<const ReplayEnv>(attempt.envs);

  JournalTupleSource source(attempt.tuples);
  PROMPT_ASSIGN_OR_RETURN(
      std::unique_ptr<MultiTenantEngine> engine,
      MultiTenantEngine::Create(options, std::move(specs), &source));

  const uint64_t heartbeats = attempt.published_batches();
  engine->Run(static_cast<uint32_t>(heartbeats));
  return heartbeats;
}

}  // namespace

Result<ReplayResult> ReplayJournal(const ReplayOptions& options) {
  if (options.journal_dir.empty() || options.output_dir.empty()) {
    return Status::Invalid("replay: journal_dir and output_dir are required");
  }
  std::error_code ec;
  if (fs::exists(options.output_dir, ec) &&
      !fs::is_empty(options.output_dir, ec)) {
    return Status::AlreadyExists("replay: output dir '" + options.output_dir +
                                 "' is not empty");
  }

  PROMPT_ASSIGN_OR_RETURN(JournalData recorded,
                          ReadJournal(options.journal_dir));

  ReplayResult result;
  result.mode = recorded.manifest.Get("mode", "single");
  if (result.mode != "single" && result.mode != "multi") {
    return Status::Invalid("replay: unknown manifest mode '" + result.mode +
                           "'");
  }

  for (const JournalAttempt& attempt : recorded.attempts) {
    ++result.attempts;
    // Replay each attempt under the manifest its own run journaled: a
    // lineage's restarts may legitimately change options (run 1 schedules
    // the crash fault, run 2 does not). Attempts synthesized from stray
    // records carry no manifest and fall back to the journal-level one.
    const JournalManifest& m = attempt.manifest.entries().empty()
                                   ? recorded.manifest
                                   : attempt.manifest;
    Result<uint64_t> ran = result.mode == "single"
                               ? ReplaySingleAttempt(m, attempt, options)
                               : ReplayMultiAttempt(m, attempt, options);
    PROMPT_RETURN_NOT_OK(ran.status());
    result.batches += *ran;
  }

  PROMPT_ASSIGN_OR_RETURN(JournalData replayed,
                          ReadJournal(options.output_dir));
  result.manifest_match =
      recorded.manifest.Serialize() == replayed.manifest.Serialize() &&
      recorded.attempts.size() == replayed.attempts.size();
  for (size_t i = 0; result.manifest_match && i < recorded.attempts.size();
       ++i) {
    result.manifest_match = recorded.attempts[i].manifest.Serialize() ==
                            replayed.attempts[i].manifest.Serialize();
  }
  result.diff = DiffJournals(recorded, replayed);
  if (!result.manifest_match) {
    result.diff.identical = false;
    result.diff.notes.push_back(
        "replayed manifest does not round-trip byte-identically "
        "(recorder/replayer schema drift)");
  }
  return result;
}

}  // namespace prompt
