#include "replay/diff.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "baselines/factory.h"
#include "obs/record.h"

namespace prompt {

namespace {

std::string Hex64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::string Num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string TechniqueName(int32_t technique) {
  if (technique < 0) return "custom";
  return PartitionerTypeName(static_cast<PartitionerType>(technique));
}

std::string SwitchLine(const JournalSwitch& s) {
  return "owner " + std::to_string(s.owner) + " after batch " +
         std::to_string(s.after_batch) + ": " + TechniqueName(s.from) + "->" +
         TechniqueName(s.to) + " (" + s.reason + ")";
}

bool BitEqual(double a, double b) {
  uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

double DeltaPct(double a, double b) {
  if (a == b) return 0.0;
  if (a == 0.0) return b > 0 ? 100.0 : -100.0;
  return (b - a) / std::fabs(a) * 100.0;
}

/// Appends one numeric delta row when the values' bit patterns differ.
void NumField(std::vector<DiffField>* fields, const std::string& name,
              double a, double b) {
  if (BitEqual(a, b)) return;
  DiffField f;
  f.field = name;
  f.a = Num(a);
  f.b = Num(b);
  f.delta_pct = DeltaPct(a, b);
  f.numeric = true;
  fields->push_back(std::move(f));
}

void TextField(std::vector<DiffField>* fields, const std::string& name,
               std::string a, std::string b) {
  if (a == b) return;
  DiffField f;
  f.field = name;
  f.a = std::move(a);
  f.b = std::move(b);
  fields->push_back(std::move(f));
}

/// The per-field delta table for one divergent batch pair.
std::vector<DiffField> FieldDeltas(const BatchOutcome& a,
                                   const BatchOutcome& b) {
  std::vector<DiffField> fields;
  TextField(&fields, "output_hash", Hex64(a.output_hash), Hex64(b.output_hash));
  for (size_t i = 0; i < kTimeSeriesSignals; ++i) {
    NumField(&fields,
             std::string(TimeSeriesSignalName(static_cast<TimeSeriesSignal>(i))),
             a.signals[i], b.signals[i]);
  }
  NumField(&fields, "map_makespan_us", static_cast<double>(a.map_makespan),
           static_cast<double>(b.map_makespan));
  NumField(&fields, "reduce_makespan_us",
           static_cast<double>(a.reduce_makespan),
           static_cast<double>(b.reduce_makespan));
  NumField(&fields, "partition_overflow_us",
           static_cast<double>(a.partition_overflow),
           static_cast<double>(b.partition_overflow));
  TextField(&fields, "technique", TechniqueName(a.technique),
            TechniqueName(b.technique));
  TextField(&fields, "technique_switched",
            a.technique_switched ? "true" : "false",
            b.technique_switched ? "true" : "false");
  if (a.switched_from != b.switched_from) {
    TextField(&fields, "switched_from", TechniqueName(a.switched_from),
              TechniqueName(b.switched_from));
  }
  TextField(&fields, "verdict", std::string(BatchCauseName(a.dominant)),
            std::string(BatchCauseName(b.dominant)));
  NumField(&fields, "autopsy_total_excess_us",
           static_cast<double>(a.total_excess),
           static_cast<double>(b.total_excess));
  NumField(&fields, "autopsy_threshold_us", static_cast<double>(a.threshold),
           static_cast<double>(b.threshold));
  for (size_t i = 0; i < kBatchCauses; ++i) {
    if (a.excess[i] == b.excess[i]) continue;
    NumField(&fields,
             std::string("excess_") +
                 std::string(BatchCauseName(static_cast<BatchCause>(i))),
             static_cast<double>(a.excess[i]),
             static_cast<double>(b.excess[i]));
  }
  return fields;
}

/// The headline fields for the one-line summary: verdict and technique
/// changes first, then the largest-magnitude signal delta.
std::string SummarizeFields(const std::vector<DiffField>& fields) {
  std::string parts;
  auto add = [&parts](const std::string& p) {
    if (!parts.empty()) parts += ", ";
    parts += p;
  };
  const DiffField* top_numeric = nullptr;
  for (const DiffField& f : fields) {
    if (f.field == "verdict" || f.field == "technique" ||
        f.field == "output_hash") {
      add(f.field + " " + f.a + "->" + f.b);
    } else if (f.numeric &&
               (top_numeric == nullptr ||
                std::fabs(f.delta_pct) > std::fabs(top_numeric->delta_pct))) {
      top_numeric = &f;
    }
  }
  if (top_numeric != nullptr) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.1f%%", top_numeric->delta_pct);
    add(top_numeric->field + " " + buf);
  }
  return parts;
}

void MarkDivergence(JournalDiff* diff, uint32_t owner, uint64_t batch_id) {
  if (!diff->identical && batch_id >= diff->first_divergent_batch) return;
  diff->identical = false;
  diff->divergent_owner = owner;
  diff->first_divergent_batch = batch_id;
  diff->fields.clear();
}

}  // namespace

JournalDiff DiffJournals(const JournalData& a, const JournalData& b) {
  JournalDiff diff;

  // Manifest deltas are configuration notes, not run divergence: a replay
  // intentionally reproduces the manifest, but diffing two hand-made runs
  // (e.g. with and without a fault schedule) should still compare outcomes.
  {
    const auto& ea = a.manifest.entries();
    const auto& eb = b.manifest.entries();
    size_t i = 0;
    for (; i < ea.size() && i < eb.size(); ++i) {
      if (ea[i] == eb[i]) continue;
      diff.notes.push_back("manifest: " + ea[i].first + "=" + ea[i].second +
                           " vs " + eb[i].first + "=" + eb[i].second);
    }
    for (; i < ea.size(); ++i) {
      diff.notes.push_back("manifest: only A has " + ea[i].first + "=" +
                           ea[i].second);
    }
    for (; i < eb.size(); ++i) {
      diff.notes.push_back("manifest: only B has " + eb[i].first + "=" +
                           eb[i].second);
    }
  }
  if (a.attempts.size() != b.attempts.size()) {
    diff.notes.push_back("attempts: " + std::to_string(a.attempts.size()) +
                         " vs " + std::to_string(b.attempts.size()));
  }

  const auto outcomes_a = a.AllOutcomes();
  const auto outcomes_b = b.AllOutcomes();
  for (const auto& [owner, batches_a] : outcomes_a) {
    auto it = outcomes_b.find(owner);
    if (it == outcomes_b.end()) {
      diff.notes.push_back("owner " + std::to_string(owner) +
                           ": present only in A");
      if (!batches_a.empty()) MarkDivergence(&diff, owner,
                                             batches_a.front().batch_id);
      continue;
    }
    const auto& batches_b = it->second;
    const size_t n = std::min(batches_a.size(), batches_b.size());
    for (size_t i = 0; i < n; ++i) {
      const BatchOutcome& oa = batches_a[i];
      const BatchOutcome& ob = batches_b[i];
      if (oa.batch_id != ob.batch_id) {
        MarkDivergence(&diff, owner, std::min(oa.batch_id, ob.batch_id));
        if (diff.first_divergent_batch == std::min(oa.batch_id, ob.batch_id) &&
            diff.divergent_owner == owner) {
          diff.notes.push_back("owner " + std::to_string(owner) +
                               ": batch id sequence differs (" +
                               std::to_string(oa.batch_id) + " vs " +
                               std::to_string(ob.batch_id) + ")");
        }
        break;
      }
      if (oa.BitIdentical(ob)) {
        ++diff.identical_batches;
        continue;
      }
      const uint64_t batch_id = oa.batch_id;
      const bool earliest =
          diff.identical || batch_id < diff.first_divergent_batch;
      MarkDivergence(&diff, owner, batch_id);
      if (earliest) diff.fields = FieldDeltas(oa, ob);
      break;
    }
    if (batches_a.size() != batches_b.size()) {
      diff.notes.push_back("owner " + std::to_string(owner) + ": " +
                           std::to_string(batches_a.size()) + " vs " +
                           std::to_string(batches_b.size()) +
                           " published batches");
      if (n < std::max(batches_a.size(), batches_b.size())) {
        const auto& longer = batches_a.size() > batches_b.size() ? batches_a
                                                                 : batches_b;
        MarkDivergence(&diff, owner, longer[n].batch_id);
      }
    }
  }
  for (const auto& [owner, batches_b] : outcomes_b) {
    if (outcomes_a.count(owner) != 0) continue;
    diff.notes.push_back("owner " + std::to_string(owner) +
                         ": present only in B");
    if (!batches_b.empty()) MarkDivergence(&diff, owner,
                                           batches_b.front().batch_id);
  }

  // The adaptive-switch sequence must match exactly; a switch delta usually
  // explains every later per-batch delta, so surface it as a note even when
  // an earlier batch already diverged.
  const auto switches_a = a.AllSwitches();
  const auto switches_b = b.AllSwitches();
  const size_t ns = std::min(switches_a.size(), switches_b.size());
  for (size_t i = 0; i < ns; ++i) {
    if (switches_a[i] == switches_b[i]) continue;
    diff.notes.push_back("switch[" + std::to_string(i) + "]: " +
                         SwitchLine(switches_a[i]) + " vs " +
                         SwitchLine(switches_b[i]));
    MarkDivergence(&diff, switches_a[i].owner,
                   std::min(switches_a[i].after_batch,
                            switches_b[i].after_batch) + 1);
    break;
  }
  if (switches_a.size() != switches_b.size()) {
    diff.notes.push_back("switch count: " + std::to_string(switches_a.size()) +
                         " vs " + std::to_string(switches_b.size()));
    const auto& longer =
        switches_a.size() > switches_b.size() ? switches_a : switches_b;
    if (ns < longer.size()) {
      diff.notes.push_back("switch only in " +
                           std::string(switches_a.size() > switches_b.size()
                                           ? "A"
                                           : "B") +
                           ": " + SwitchLine(longer[ns]));
      MarkDivergence(&diff, longer[ns].owner, longer[ns].after_batch + 1);
    }
  }

  if (diff.identical) {
    diff.summary = "journals identical over " +
                   std::to_string(diff.identical_batches) +
                   " published batches";
  } else {
    diff.summary = "first divergence at batch " +
                   std::to_string(diff.first_divergent_batch) + " (owner " +
                   std::to_string(diff.divergent_owner) + ")";
    const std::string detail = SummarizeFields(diff.fields);
    if (!detail.empty()) {
      diff.summary += ": " + detail;
    } else if (!diff.notes.empty()) {
      diff.summary += ": " + diff.notes.back();
    }
  }
  return diff;
}

void WriteDiffRecords(const JournalDiff& diff, RecordSink* sink) {
  for (const DiffField& f : diff.fields) {
    Record r;
    r.Set("row", "diff_field")
        .Set("batch_id", diff.first_divergent_batch)
        .Set("owner", diff.divergent_owner)
        .Set("field", f.field)
        .Set("a", f.a)
        .Set("b", f.b)
        .Set("delta_pct", f.delta_pct);
    sink->Write(r);
  }
  for (const std::string& note : diff.notes) {
    Record r;
    r.Set("row", "diff_note")
        .Set("batch_id", diff.identical ? uint64_t{0}
                                        : diff.first_divergent_batch)
        .Set("owner", diff.divergent_owner)
        .Set("field", "note")
        .Set("a", note)
        .Set("b", "")
        .Set("delta_pct", 0.0);
    sink->Write(r);
  }
  sink->Flush();
}

void WriteDiffText(const JournalDiff& diff, std::ostream* out) {
  *out << diff.summary << "\n";
  if (!diff.fields.empty()) {
    char line[256];
    std::snprintf(line, sizeof(line), "  %-28s %16s %16s %10s\n", "field",
                  "A", "B", "delta");
    *out << line;
    for (const DiffField& f : diff.fields) {
      if (f.numeric) {
        char delta[32];
        std::snprintf(delta, sizeof(delta), "%+.1f%%", f.delta_pct);
        std::snprintf(line, sizeof(line), "  %-28s %16s %16s %10s\n",
                      f.field.c_str(), f.a.c_str(), f.b.c_str(), delta);
      } else {
        std::snprintf(line, sizeof(line), "  %-28s %16s %16s %10s\n",
                      f.field.c_str(), f.a.c_str(), f.b.c_str(), "-");
      }
      *out << line;
    }
  }
  for (const std::string& note : diff.notes) {
    *out << "  note: " << note << "\n";
  }
  out->flush();
}

}  // namespace prompt
