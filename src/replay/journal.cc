#include "replay/journal.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"
#include "fault/fault_injector.h"

namespace prompt {

namespace {

constexpr size_t kPayloadHeaderBytes = 13;  // kind u8 + owner u32 + batch u64

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

void PutI32(std::string* out, int32_t v) { PutU32(out, static_cast<uint32_t>(v)); }

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Bounds-checked little-endian reader over one record body.
class Cursor {
 public:
  Cursor(const std::string& bytes, size_t offset)
      : data_(bytes.data()), size_(bytes.size()), pos_(offset) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool U32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    std::memcpy(v, data_ + pos_, 4);
    pos_ += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    std::memcpy(v, data_ + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool I64(int64_t* v) {
    uint64_t u;
    if (!U64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool I32(int32_t* v) {
    uint32_t u;
    if (!U32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, 8);
    return true;
  }
  bool Varint(uint64_t* v) {
    uint64_t result = 0;
    for (uint32_t shift = 0; shift < 64; shift += 7) {
      if (pos_ >= size_) return false;
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *v = result;
        return true;
      }
    }
    return false;
  }
  std::string Rest() { return std::string(data_ + pos_, size_ - pos_); }
  size_t remaining() const { return size_ - pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_;
};

std::string MakePayload(JournalRecordKind kind, uint32_t owner,
                        uint64_t batch_id, const std::string& body) {
  std::string payload;
  payload.reserve(kPayloadHeaderBytes + body.size());
  PutU8(&payload, static_cast<uint8_t>(kind));
  PutU32(&payload, owner);
  PutU64(&payload, batch_id);
  payload.append(body);
  return payload;
}

/// Strict `seg-NNNNNN.log` name parse, mirroring the block store's.
bool ParseSegmentFilename(const std::string& name, uint64_t* id) {
  constexpr const char* kPrefix = "seg-";
  constexpr const char* kSuffix = ".log";
  if (name.size() <= 4 + 4) return false;
  if (name.compare(0, 4, kPrefix) != 0) return false;
  if (name.compare(name.size() - 4, 4, kSuffix) != 0) return false;
  uint64_t value = 0;
  for (size_t i = 4; i < name.size() - 4; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *id = value;
  return true;
}

/// Sorted (id, path) of every well-named segment in `dir`.
std::vector<std::pair<uint64_t, std::string>> ListSegments(
    const std::string& dir) {
  std::vector<std::pair<uint64_t, std::string>> segments;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t id = 0;
    if (!entry.is_regular_file()) continue;
    if (!ParseSegmentFilename(entry.path().filename().string(), &id)) continue;
    segments.emplace_back(id, entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  return segments;
}

std::string EncodeTuples(const std::vector<Tuple>& tuples) {
  std::string body;
  // Worst case ~10B per varint; typical batches encode at 3-5B/tuple, so
  // one generous reservation beats per-append growth on the hot path.
  body.reserve(32 + tuples.size() * 12);
  bool all_unit = true;
  for (const Tuple& t : tuples) {
    if (t.value != 1.0) {
      all_unit = false;
      break;
    }
  }
  PutU8(&body, all_unit ? 1 : 0);
  PutVarint(&body, tuples.size());
  // Key runs: adjacent same-key tuples collapse to one (key, count) pair.
  uint64_t run_count = 0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i == 0 || tuples[i].key != tuples[i - 1].key) ++run_count;
  }
  PutVarint(&body, run_count);
  for (size_t i = 0; i < tuples.size();) {
    size_t j = i + 1;
    while (j < tuples.size() && tuples[j].key == tuples[i].key) ++j;
    PutVarint(&body, tuples[i].key);
    PutVarint(&body, j - i);
    i = j;
  }
  TimeMicros prev = 0;
  for (const Tuple& t : tuples) {
    PutVarint(&body, ZigZag(t.ts - prev));
    prev = t.ts;
  }
  if (!all_unit) {
    for (const Tuple& t : tuples) PutF64(&body, t.value);
  }
  return body;
}

Status DecodeTuples(const std::string& payload, std::vector<Tuple>* out) {
  Cursor c(payload, kPayloadHeaderBytes);
  uint8_t flags = 0;
  uint64_t count = 0, runs = 0;
  if (!c.U8(&flags) || !c.Varint(&count) || !c.Varint(&runs)) {
    return Status::Invalid("journal: truncated tuple record header");
  }
  if (count > (1ull << 32) || runs > count) {
    return Status::Invalid("journal: implausible tuple record counts");
  }
  std::vector<Tuple> tuples;
  tuples.reserve(count);
  for (uint64_t r = 0; r < runs; ++r) {
    uint64_t key = 0, n = 0;
    if (!c.Varint(&key) || !c.Varint(&n)) {
      return Status::Invalid("journal: truncated key run");
    }
    if (tuples.size() + n > count) {
      return Status::Invalid("journal: key runs exceed tuple count");
    }
    for (uint64_t k = 0; k < n; ++k) {
      Tuple t;
      t.key = key;
      t.value = 1.0;
      tuples.push_back(t);
    }
  }
  if (tuples.size() != count) {
    return Status::Invalid("journal: key runs short of tuple count");
  }
  TimeMicros prev = 0;
  for (Tuple& t : tuples) {
    uint64_t delta = 0;
    if (!c.Varint(&delta)) return Status::Invalid("journal: truncated ts delta");
    prev += UnZigZag(delta);
    t.ts = prev;
  }
  if ((flags & 1) == 0) {
    for (Tuple& t : tuples) {
      if (!c.F64(&t.value)) return Status::Invalid("journal: truncated value");
    }
  }
  out->insert(out->end(), tuples.begin(), tuples.end());
  return Status::OK();
}

std::string EncodeOutcome(const BatchOutcome& o) {
  std::string body;
  PutU64(&body, o.output_hash);
  for (double v : o.signals) PutF64(&body, v);
  PutI64(&body, o.map_makespan);
  PutI64(&body, o.reduce_makespan);
  PutI64(&body, o.partition_overflow);
  PutI32(&body, o.technique);
  PutU8(&body, o.technique_switched ? 1 : 0);
  PutI32(&body, o.switched_from);
  PutU8(&body, static_cast<uint8_t>(o.dominant));
  PutI64(&body, o.total_excess);
  PutI64(&body, o.threshold);
  for (TimeMicros e : o.excess) PutI64(&body, e);
  return body;
}

Status DecodeOutcome(const std::string& payload, uint64_t batch_id,
                     BatchOutcome* out) {
  Cursor c(payload, kPayloadHeaderBytes);
  BatchOutcome o;
  o.batch_id = batch_id;
  bool ok = c.U64(&o.output_hash);
  for (size_t s = 0; ok && s < kTimeSeriesSignals; ++s) ok = c.F64(&o.signals[s]);
  ok = ok && c.I64(&o.map_makespan) && c.I64(&o.reduce_makespan) &&
       c.I64(&o.partition_overflow) && c.I32(&o.technique);
  uint8_t switched = 0, dominant = 0;
  ok = ok && c.U8(&switched) && c.I32(&o.switched_from) && c.U8(&dominant) &&
       c.I64(&o.total_excess) && c.I64(&o.threshold);
  for (size_t e = 0; ok && e < kBatchCauses; ++e) ok = c.I64(&o.excess[e]);
  if (!ok || dominant >= kBatchCauses) {
    return Status::Invalid("journal: malformed outcome record");
  }
  o.technique_switched = switched != 0;
  o.dominant = static_cast<BatchCause>(dominant);
  *out = o;
  return Status::OK();
}

std::string EncodeEnv(const BatchEnv& env) {
  std::string body;
  PutI64(&body, env.partition_cost);
  PutI64(&body, env.seal_barrier_latency);
  PutI64(&body, env.merge_latency);
  PutU64(&body, env.ring_high_water);
  PutU64(&body, env.ring_capacity);
  return body;
}

Status DecodeEnv(const std::string& payload, uint64_t batch_id,
                 BatchEnv* out) {
  Cursor c(payload, kPayloadHeaderBytes);
  BatchEnv env;
  env.batch_id = batch_id;
  if (!c.I64(&env.partition_cost) || !c.I64(&env.seal_barrier_latency) ||
      !c.I64(&env.merge_latency) || !c.U64(&env.ring_high_water) ||
      !c.U64(&env.ring_capacity)) {
    return Status::Invalid("journal: malformed batch-env record");
  }
  *out = env;
  return Status::OK();
}

}  // namespace

// ---- JournalManifest ----

void JournalManifest::Set(const std::string& key, const std::string& value) {
  entries_.emplace_back(key, value);
}
void JournalManifest::Set(const std::string& key, const char* value) {
  entries_.emplace_back(key, value);
}
void JournalManifest::Set(const std::string& key, uint64_t value) {
  Set(key, std::to_string(value));
}
void JournalManifest::Set(const std::string& key, int64_t value) {
  Set(key, std::to_string(value));
}
void JournalManifest::Set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  Set(key, std::string(buf));
}
void JournalManifest::Set(const std::string& key, bool value) {
  Set(key, std::string(value ? "1" : "0"));
}

const std::string* JournalManifest::Find(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JournalManifest::Get(const std::string& key,
                                 const std::string& fallback) const {
  const std::string* v = Find(key);
  return v != nullptr ? *v : fallback;
}

uint64_t JournalManifest::GetUint(const std::string& key,
                                  uint64_t fallback) const {
  const std::string* v = Find(key);
  if (v == nullptr) return fallback;
  try {
    return std::stoull(*v);
  } catch (...) {
    return fallback;
  }
}

int64_t JournalManifest::GetInt(const std::string& key, int64_t fallback) const {
  const std::string* v = Find(key);
  if (v == nullptr) return fallback;
  try {
    return std::stoll(*v);
  } catch (...) {
    return fallback;
  }
}

double JournalManifest::GetDouble(const std::string& key,
                                  double fallback) const {
  const std::string* v = Find(key);
  if (v == nullptr) return fallback;
  try {
    return std::stod(*v);
  } catch (...) {
    return fallback;
  }
}

bool JournalManifest::GetBool(const std::string& key, bool fallback) const {
  const std::string* v = Find(key);
  if (v == nullptr) return fallback;
  return *v == "1" || *v == "true";
}

std::vector<std::string> JournalManifest::GetAll(const std::string& key) const {
  std::vector<std::string> values;
  for (const auto& [k, v] : entries_) {
    if (k == key) values.push_back(v);
  }
  return values;
}

std::string JournalManifest::Serialize() const {
  std::string text;
  for (const auto& [k, v] : entries_) {
    text += k;
    text += '=';
    text += v;
    text += '\n';
  }
  return text;
}

Result<JournalManifest> JournalManifest::Parse(const std::string& text) {
  JournalManifest manifest;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::Invalid("journal manifest: line without '=': " + line);
    }
    manifest.Set(line.substr(0, eq), line.substr(eq + 1));
  }
  return manifest;
}

// ---- Outcome helpers ----

bool BatchOutcome::BitIdentical(const BatchOutcome& other) const {
  auto bits = [](double v) {
    uint64_t b;
    std::memcpy(&b, &v, 8);
    return b;
  };
  if (batch_id != other.batch_id || output_hash != other.output_hash ||
      map_makespan != other.map_makespan ||
      reduce_makespan != other.reduce_makespan ||
      partition_overflow != other.partition_overflow ||
      technique != other.technique ||
      technique_switched != other.technique_switched ||
      switched_from != other.switched_from || dominant != other.dominant ||
      total_excess != other.total_excess || threshold != other.threshold ||
      excess != other.excess) {
    return false;
  }
  for (size_t s = 0; s < kTimeSeriesSignals; ++s) {
    if (bits(signals[s]) != bits(other.signals[s])) return false;
  }
  return true;
}

BatchOutcome OutcomeFrom(const BatchReport& report,
                         const BatchAutopsy& autopsy) {
  BatchOutcome o;
  o.batch_id = report.batch_id;
  o.output_hash = report.output_hash;
  o.signals = TimeSeriesStore::PointFrom(report).values;
  o.map_makespan = report.map_makespan;
  o.reduce_makespan = report.reduce_makespan;
  o.partition_overflow = report.partition_overflow;
  o.technique = report.technique;
  o.technique_switched = report.technique_switched;
  o.switched_from = report.switched_from;
  o.dominant = autopsy.dominant;
  o.total_excess = autopsy.total_excess;
  o.threshold = autopsy.threshold;
  o.excess = autopsy.excess;
  return o;
}

BatchEnv SettleBatchEnv(const std::shared_ptr<const ReplayEnv>& inject,
                        uint32_t owner, PartitionedBatch* batch,
                        const IngestMetrics* metrics) {
  BatchEnv env;
  env.batch_id = batch->batch_id;
  const BatchEnv* recorded = nullptr;
  if (inject != nullptr) {
    auto it = inject->find({owner, batch->batch_id});
    if (it != inject->end()) recorded = &it->second;
  }
  // The partitioner decision cost is Stopwatch-measured: the one wall-clock
  // quantity on the sealing path. Replay substitutes the recorded value so
  // partition_overflow — and everything downstream of it — is bit-identical
  // rather than merely close.
  if (recorded != nullptr) batch->partition_cost = recorded->partition_cost;
  env.partition_cost = batch->partition_cost;
  if (metrics != nullptr) {
    if (recorded != nullptr) {
      env.seal_barrier_latency = recorded->seal_barrier_latency;
      env.merge_latency = recorded->merge_latency;
      env.ring_high_water = recorded->ring_high_water;
      env.ring_capacity = recorded->ring_capacity;
    } else {
      env.seal_barrier_latency = metrics->seal_barrier_latency;
      env.merge_latency = metrics->merge_latency;
      // The worst shard's occupancy sample: the two integers whose division
      // is MaxRingOccupancyFrac (same comparison, so the same argmax).
      double worst = -1;
      for (const ShardIngestStats& s : metrics->shards) {
        if (s.ring_capacity == 0) continue;
        const double frac = static_cast<double>(s.ring_high_water) /
                            static_cast<double>(s.ring_capacity);
        if (frac > worst) {
          worst = frac;
          env.ring_high_water = s.ring_high_water;
          env.ring_capacity = s.ring_capacity;
        }
      }
    }
  }
  return env;
}

void InjectIngestEnv(const std::shared_ptr<const ReplayEnv>& inject,
                     uint32_t owner, const BatchEnv& env,
                     BatchReport* report) {
  if (inject == nullptr || !report->has_ingest) return;
  if (inject->find({owner, report->batch_id}) == inject->end()) return;
  // Replace the thread-timing-dependent ingest numbers with the recorded
  // ones. Per-shard ring samples collapse onto shard 0 — the max (the only
  // thing the backpressure signal and the verdict read) is preserved
  // exactly.
  report->ingest.seal_barrier_latency = env.seal_barrier_latency;
  report->ingest.merge_latency = env.merge_latency;
  for (ShardIngestStats& s : report->ingest.shards) s.ring_high_water = 0;
  if (report->ingest.shards.empty()) report->ingest.shards.resize(1);
  report->ingest.shards[0].ring_high_water = env.ring_high_water;
  report->ingest.shards[0].ring_capacity = env.ring_capacity;
}

uint64_t HashBatchOutput(const std::vector<KV>& output) {
  // XOR-combined per-entry mixes: commutative, so replica/block emission
  // order cannot matter, and a (key, value) change always flips the hash.
  uint64_t h = Mix64(output.size() ^ 0x9E3779B97F4A7C15ull);
  for (const KV& kv : output) {
    uint64_t bits;
    std::memcpy(&bits, &kv.value, 8);
    h ^= Mix64(kv.key ^ Mix64(bits));
  }
  return h;
}

// ---- JournalAttempt / JournalData ----

size_t JournalAttempt::published_batches() const {
  auto it = outcomes.find(0);
  return it != outcomes.end() ? it->second.size() : 0;
}

bool JournalAttempt::crashed() const {
  for (const JournalFault& f : faults) {
    if (f.kind == static_cast<uint8_t>(FaultKind::kCrash)) return true;
  }
  return false;
}

std::vector<Tuple> JournalData::AllTuples() const {
  std::vector<Tuple> all;
  for (const JournalAttempt& a : attempts) {
    all.insert(all.end(), a.tuples.begin(), a.tuples.end());
  }
  return all;
}

std::map<uint32_t, std::vector<BatchOutcome>> JournalData::AllOutcomes() const {
  std::map<uint32_t, std::vector<BatchOutcome>> all;
  for (const JournalAttempt& a : attempts) {
    for (const auto& [owner, outcomes] : a.outcomes) {
      all[owner].insert(all[owner].end(), outcomes.begin(), outcomes.end());
    }
  }
  return all;
}

std::vector<JournalSwitch> JournalData::AllSwitches() const {
  std::vector<JournalSwitch> all;
  for (const JournalAttempt& a : attempts) {
    all.insert(all.end(), a.switches.begin(), a.switches.end());
  }
  return all;
}

// ---- ReadJournal ----

Result<JournalData> ReadJournal(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return Status::IOError("journal directory not found: " + dir);
  }
  const auto segments = ListSegments(dir);
  if (segments.empty()) {
    return Status::Invalid("no journal segments in " + dir);
  }
  JournalData data;
  bool have_manifest = false;
  JournalManifest pending_manifest;
  bool have_pending_manifest = false;
  JournalAttempt* attempt = nullptr;
  for (const auto& [id, path] : segments) {
    PROMPT_ASSIGN_OR_RETURN(SegmentScan scan, ScanSegmentFile(path));
    if (!scan.header_ok) {
      PROMPT_LOG(kWarn) << "journal: skipping corrupt-header segment " << path;
      continue;
    }
    data.torn_records += scan.torn_records;
    for (const SegmentRecord& record : scan.records) {
      Cursor c(record.payload, 0);
      uint8_t kind = 0;
      uint32_t owner = 0;
      uint64_t batch_id = 0;
      if (!c.U8(&kind) || !c.U32(&owner) || !c.U64(&batch_id)) {
        return Status::Invalid("journal: record shorter than payload header");
      }
      switch (static_cast<JournalRecordKind>(kind)) {
        case JournalRecordKind::kManifest: {
          PROMPT_ASSIGN_OR_RETURN(pending_manifest,
                                  JournalManifest::Parse(c.Rest()));
          have_pending_manifest = true;
          if (!have_manifest) {
            data.manifest = pending_manifest;
            have_manifest = true;
          }
          break;
        }
        case JournalRecordKind::kRunStart: {
          data.attempts.emplace_back();
          attempt = &data.attempts.back();
          // Each Open appends its lifetime's manifest just before the
          // run-start marker; bind it to this attempt.
          if (have_pending_manifest) {
            attempt->manifest = std::move(pending_manifest);
            have_pending_manifest = false;
          }
          break;
        }
        case JournalRecordKind::kBatchTuples: {
          if (attempt == nullptr) {
            data.attempts.emplace_back();
            attempt = &data.attempts.back();
          }
          PROMPT_RETURN_NOT_OK(DecodeTuples(record.payload, &attempt->tuples));
          break;
        }
        case JournalRecordKind::kOutcome: {
          if (attempt == nullptr) {
            data.attempts.emplace_back();
            attempt = &data.attempts.back();
          }
          BatchOutcome outcome;
          PROMPT_RETURN_NOT_OK(
              DecodeOutcome(record.payload, batch_id, &outcome));
          attempt->outcomes[owner].push_back(outcome);
          break;
        }
        case JournalRecordKind::kSwitch: {
          if (attempt == nullptr) {
            data.attempts.emplace_back();
            attempt = &data.attempts.back();
          }
          JournalSwitch s;
          s.owner = owner;
          s.after_batch = batch_id;
          if (!c.I32(&s.from) || !c.I32(&s.to)) {
            return Status::Invalid("journal: malformed switch record");
          }
          s.reason = c.Rest();
          attempt->switches.push_back(std::move(s));
          break;
        }
        case JournalRecordKind::kFault: {
          if (attempt == nullptr) {
            data.attempts.emplace_back();
            attempt = &data.attempts.back();
          }
          JournalFault f;
          f.batch_id = batch_id;
          f.target = owner;
          if (!c.U8(&f.point) || !c.U8(&f.kind)) {
            return Status::Invalid("journal: malformed fault record");
          }
          attempt->faults.push_back(f);
          break;
        }
        case JournalRecordKind::kBatchEnv: {
          if (attempt == nullptr) {
            data.attempts.emplace_back();
            attempt = &data.attempts.back();
          }
          BatchEnv env;
          PROMPT_RETURN_NOT_OK(DecodeEnv(record.payload, batch_id, &env));
          attempt->envs[{owner, batch_id}] = env;
          break;
        }
        default:
          return Status::Invalid("journal: unknown record kind " +
                                 std::to_string(kind) + " in " + path);
      }
    }
  }
  if (!have_manifest) {
    return Status::Invalid(dir + " has segments but no manifest record "
                                 "(not a journal directory?)");
  }
  return data;
}

// ---- JournalWriter ----

JournalWriter::JournalWriter(JournalOptions options)
    : options_(std::move(options)) {}

JournalWriter::~JournalWriter() = default;

Result<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const JournalOptions& options, const JournalManifest& manifest) {
  if (!options.enabled()) {
    return Status::Invalid("journal: empty directory in options");
  }
  std::error_code ec;
  std::filesystem::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("journal: cannot create " + options.dir + ": " +
                           ec.message());
  }
  std::unique_ptr<JournalWriter> writer(new JournalWriter(options));
  const auto segments = ListSegments(options.dir);
  if (segments.empty()) {
    writer->fresh_ = true;
    PROMPT_ASSIGN_OR_RETURN(SegmentWriter * active, writer->ActiveSegment());
    (void)active;
  } else {
    // Resuming an existing journal (crash/restart lineage): truncate any
    // torn tail, then reopen the newest segment for append.
    for (const auto& [id, path] : segments) {
      PROMPT_ASSIGN_OR_RETURN(SegmentScan scan, ScanSegmentFile(path));
      if (!scan.header_ok) {
        return Status::IOError("journal: corrupt segment header in " + path);
      }
      if (scan.torn_bytes > 0) {
        PROMPT_LOG(kWarn) << "journal: truncating " << scan.torn_bytes
                          << " torn byte(s) from " << path;
        PROMPT_RETURN_NOT_OK(TruncateFile(path, scan.valid_bytes));
      }
      writer->appended_bytes_ += scan.valid_bytes;
    }
    const auto& [newest_id, newest_path] = segments.back();
    PROMPT_ASSIGN_OR_RETURN(SegmentScan newest, ScanSegmentFile(newest_path));
    PROMPT_ASSIGN_OR_RETURN(
        writer->active_,
        SegmentWriter::OpenExisting(newest_path, newest.valid_bytes));
    writer->active_id_ = newest_id;
  }
  // One manifest + run-start marker per engine lifetime — resumed runs may
  // carry different options than the run they extend (a restart typically
  // drops the crash fault that ended its predecessor), so each attempt
  // journals its own configuration. Fsynced immediately so replay can
  // always partition attempts, whatever the append policy.
  PROMPT_RETURN_NOT_OK(writer->Append(
      JournalRecordKind::kManifest, 0, 0, manifest.Serialize()));
  PROMPT_RETURN_NOT_OK(
      writer->Append(JournalRecordKind::kRunStart, 0, 0, std::string()));
  PROMPT_RETURN_NOT_OK(writer->Sync());
  return writer;
}

Result<SegmentWriter*> JournalWriter::ActiveSegment() {
  if (active_ != nullptr && active_->size() < options_.segment_bytes) {
    return active_.get();
  }
  if (active_ != nullptr) {
    // Seal: everything in a rolled segment is durable before the roll.
    PROMPT_RETURN_NOT_OK(active_->Sync());
    ++active_id_;
  }
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.log",
                static_cast<unsigned long long>(active_id_));
  const std::string path =
      (std::filesystem::path(options_.dir) / name).string();
  PROMPT_ASSIGN_OR_RETURN(active_, SegmentWriter::Create(path));
  if (Status st = SyncDir(options_.dir); !st.ok()) {
    PROMPT_LOG(kWarn) << "journal: directory sync failed: " << st.ToString();
  }
  return active_.get();
}

Status JournalWriter::Append(JournalRecordKind kind, uint32_t owner,
                             uint64_t batch_id, const std::string& body) {
  PROMPT_ASSIGN_OR_RETURN(SegmentWriter * segment, ActiveSegment());
  const std::string payload = MakePayload(kind, owner, batch_id, body);
  PROMPT_ASSIGN_OR_RETURN(uint64_t offset, segment->Append(payload));
  (void)offset;
  appended_bytes_ += kRecordHeaderBytes + payload.size();
  if (options_.fsync == FsyncPolicy::kAlways) {
    PROMPT_RETURN_NOT_OK(segment->Sync());
  }
  return Status::OK();
}

Status JournalWriter::AppendBatchTuples(uint64_t batch_id) {
  const std::string body = EncodeTuples(buffer_);
  buffer_.clear();
  return Append(JournalRecordKind::kBatchTuples, 0, batch_id, body);
}

Status JournalWriter::AppendOutcome(uint32_t owner,
                                    const BatchOutcome& outcome) {
  return Append(JournalRecordKind::kOutcome, owner, outcome.batch_id,
                EncodeOutcome(outcome));
}

Status JournalWriter::AppendSwitch(const JournalSwitch& decision) {
  std::string body;
  PutI32(&body, decision.from);
  PutI32(&body, decision.to);
  body += decision.reason;
  return Append(JournalRecordKind::kSwitch, decision.owner,
                decision.after_batch, body);
}

Status JournalWriter::AppendFault(const JournalFault& fault) {
  std::string body;
  PutU8(&body, fault.point);
  PutU8(&body, fault.kind);
  return Append(JournalRecordKind::kFault, fault.target, fault.batch_id, body);
}

Status JournalWriter::AppendEnv(uint32_t owner, const BatchEnv& env) {
  return Append(JournalRecordKind::kBatchEnv, owner, env.batch_id,
                EncodeEnv(env));
}

Status JournalWriter::Sync() {
  if (active_ == nullptr) return Status::OK();
  return active_->Sync();
}

Status JournalWriter::SyncBatch() {
  if (options_.fsync != FsyncPolicy::kBatch) return Status::OK();
  return Sync();
}

uint64_t JournalWriter::unsynced_bytes() const {
  if (active_ == nullptr) return 0;
  return active_->size() - active_->synced_bytes();
}

// ---- JournalTupleSource ----

JournalTupleSource::JournalTupleSource(std::vector<Tuple> tuples)
    : tuples_(std::move(tuples)) {
  std::unordered_set<KeyId> keys;
  keys.reserve(tuples_.size());
  for (const Tuple& t : tuples_) keys.insert(t.key);
  cardinality_ = keys.size();
}

bool JournalTupleSource::Next(Tuple* out) {
  if (pos_ >= tuples_.size()) return false;
  *out = tuples_[pos_++];
  return true;
}

}  // namespace prompt
