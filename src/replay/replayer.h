// Journal replay (DESIGN.md §16): reconstructs a recorded run from its
// journal alone — options from the manifest, tuples from the recorded
// stream, wall-clock inputs injected per batch — and re-records it into an
// output journal. The acceptance check is structural: the replayed journal's
// outcome stream must be bit-identical to the original's (DiffJournals),
// and the re-recorded manifest must match byte for byte.
//
// Crash/restart lineages replay attempt by attempt: each run-start marker in
// the source journal drives one fresh engine over the recorded attempt's
// tuples, with the scratch store directory chained across attempts exactly
// as the recorded processes chained theirs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "replay/diff.h"
#include "replay/journal.h"

namespace prompt {

struct ReplayOptions {
  /// The recorded journal to reproduce.
  std::string journal_dir;
  /// Where the replay re-records itself (must not already hold a journal).
  /// Runs whose manifest enables the durable store get a scratch store at
  /// `<output_dir>/store`.
  std::string output_dir;
};

struct ReplayResult {
  /// "single" or "multi" (the manifest's engine mode).
  std::string mode;
  uint64_t attempts = 0;
  /// Heartbeats driven across all attempts (crashed batches included).
  uint64_t batches = 0;
  /// The original manifest serialized byte-identically from the
  /// reconstructed options — false means a manifest key failed to
  /// round-trip (a recorder/replayer schema bug, reported loudly).
  bool manifest_match = false;
  /// Recorded vs replayed journal, compared outcome by outcome.
  JournalDiff diff;

  /// The replay reproduced the run exactly.
  bool BitIdentical() const { return manifest_match && diff.identical; }
};

/// \brief Replays `journal_dir` into `output_dir` and compares the two.
Result<ReplayResult> ReplayJournal(const ReplayOptions& options);

}  // namespace prompt
