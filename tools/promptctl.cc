// promptctl — run a streaming query on any dataset with any partitioning
// technique and print the per-batch report plus the windowed answer.
//
//   promptctl --dataset=Tweets --technique=Prompt --rate=8000
//             --interval_ms=1000 --batches=20 --tasks=16
//             --query="SELECT COUNT TOP 10 WINDOW 10S"
//
//   promptctl --list                     # datasets and techniques
//   promptctl --technique=cAM --elastic  # Alg. 4 elasticity on
//
// Fault injection (enables cluster mode):
//   --fault_schedule="kill:2@5.map;revive:2@9"   seeded, deterministic
//   --nodes=4 --cores_per_node=4 --replication=2 cluster shape
//
// Observability:
//   --trace_out=trace.jsonl    one structured trace per batch (spans for
//                              accumulate/seal/merge/plan/map/reduce)
//   --metrics_every=N          metrics snapshot every N batches (stdout, or
//                              --metrics_out=metrics.jsonl for a file)
//   --serve_metrics_port=9464  live /metrics + /timeseries.json + /healthz
//                              on 127.0.0.1 (0 = pick a free port);
//                              --serve_hold_ms keeps serving after the run
//   --explain=N                per-cause autopsy of batch N after the run
//   --autopsy_out=a.jsonl      one autopsy record per batch
//
// Durability (src/store/, enables cluster mode):
//   --store_dir=DIR            append-only durable block store; on start the
//                              engine recovers surviving in-window batches
//   --fsync=never|batch|always when appends reach disk (default: batch)
//   --memory_budget_mb=N       per-node cap on in-memory replicas; older
//                              durably-stored batches spill past it (0 = off)
//   --recover_only             recover from --store_dir, print the recovered
//                              window's TOP-K and exit without new batches
//   --crash_after=N            process N batches then die by SIGKILL — the
//                              crash half of a kill/restart drill (pair the
//                              restart with --recover_only)
//
// Adaptive technique switching (src/adapt/):
//   --adaptive                           telemetry-driven switching across
//                                        the candidate ladder
//   --adapt_candidates=Hash,PK2,Prompt   ladder, cheapest→most robust
//   --adapt_d=3                          consecutive batches before a switch
//
// Multi-tenant serving (src/tenant/):
//   --queries=examples/two_tenants.query N tenant specs share one ingest
//                                        stream; --tasks is the slot pool a
//                                        weighted-fair scheduler divides each
//                                        heartbeat. Per-tenant autopsy rows
//                                        (--autopsy_out) carry a `tenant`
//                                        column; the telemetry server adds
//                                        /tenants.json and
//                                        /timeseries.json?tenant=<id>.
//
// Flight recorder (src/replay/):
//   --record=DIR               journal the run (tuples, outcomes, switches,
//                              faults, wall-clock inputs) for replay
//   --replay=DIR               re-run a journal bit-identically, re-record
//                              it (into --record, or DIR.replay) and verify;
//                              exit 4 if any batch diverged
//   --diff=DIRA,DIRB           compare two journals; prints the first
//                              divergent batch with a per-field delta
//                              table; exit 4 on divergence
//   --scenario=NAME            replace --dataset with a stress preset
//                              (diurnal, flash_crowd, vocab_churn) or
//                              replay:<dir> (a journal's captured stream)
//
// Store retention (with --store_dir):
//   --retain_batches=N         keep at most N newest batches per owner
//   --retain_bytes=N           cap the on-disk segment bytes (oldest
//                              batches expire first; the newest survives)
//
// Heavy-hitter mode (DESIGN.md §17):
//   --key_mode=exact|sketch    sketch bounds per-key ingest state to
//                              O(sketch capacity): heavy hitters get exact
//                              counters, the tail flows through hash
//                              buckets. Per-batch `cov` column = fraction
//                              of tuples on exactly-tracked keys; the run
//                              footer prints mean coverage + peak RSS.
//   --sketch_capacity=N        Space-Saving entries per shard (default 4096)
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>

#include "baselines/factory.h"
#include "common/flags.h"
#include "engine/engine.h"
#include "engine/report_io.h"
#include "obs/sink.h"
#include "query/multi_query.h"
#include "query/parser.h"
#include "replay/diff.h"
#include "replay/replayer.h"
#include "tenant/multi_tenant_engine.h"
#include "workload/scenarios.h"
#include "workload/sources.h"

using namespace prompt;

namespace {

int ListOptions() {
  std::printf("datasets:   Tweets SynD DEBS GCM TPC-H\n");
  std::printf("techniques:");
  for (PartitionerType type :
       {PartitionerType::kTimeBased, PartitionerType::kShuffle,
        PartitionerType::kHash, PartitionerType::kPk2, PartitionerType::kPk5,
        PartitionerType::kCam, PartitionerType::kPrompt,
        PartitionerType::kPromptPostSort, PartitionerType::kFfd,
        PartitionerType::kFragMin, PartitionerType::kSketch}) {
    std::printf(" %s", PartitionerTypeName(type));
  }
  std::printf("\n");
  return 0;
}

Result<DatasetId> DatasetFromName(const std::string& name) {
  if (name == "Tweets") return DatasetId::kTweets;
  if (name == "SynD") return DatasetId::kSynD;
  if (name == "DEBS") return DatasetId::kDebs;
  if (name == "GCM") return DatasetId::kGcm;
  if (name == "TPC-H" || name == "TPCH") return DatasetId::kTpch;
  return Status::Invalid("unknown dataset: " + name);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "promptctl: %s\n", status.ToString().c_str());
  return 1;
}

/// Peak resident set size of this process, in bytes (0 where unsupported).
/// The heavy-hitter smoke in ci.sh budgets this: sketch mode must hold a
/// 1M-key stream without exact-mode's O(distinct keys) table.
size_t PeakRssBytes() {
#ifdef __linux__
  if (FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    size_t kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
    }
    std::fclose(f);
    return kb * 1024;
  }
#endif
  return 0;
}

/// Mean head coverage over a run's batches (sketch mode only; exact batches
/// report 1.0 and are skipped so mixed runs stay meaningful).
double MeanHeadCoverage(const std::vector<BatchReport>& batches) {
  double sum = 0;
  size_t n = 0;
  for (const BatchReport& b : batches) {
    if (!b.sketch.sketch_mode) continue;
    sum += b.sketch.head_coverage();
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

/// --diff mode: compare two journal directories, print the first divergent
/// batch's delta table. Exit 0 identical, 4 divergent, 1 on read errors.
int RunDiff(const std::string& spec) {
  const size_t comma = spec.find(',');
  if (comma == std::string::npos || comma == 0 || comma + 1 == spec.size()) {
    return Fail(Status::Invalid("--diff wants two directories: dirA,dirB"));
  }
  auto a = ReadJournal(spec.substr(0, comma));
  if (!a.ok()) return Fail(a.status());
  auto b = ReadJournal(spec.substr(comma + 1));
  if (!b.ok()) return Fail(b.status());
  const JournalDiff diff = DiffJournals(*a, *b);
  WriteDiffText(diff, &std::cout);
  return diff.identical ? 0 : 4;
}

/// --replay mode: drive fresh engines over a journal's attempts, re-record,
/// and verify the rerun against the recording. Exit 4 if anything diverged.
int RunReplay(const std::string& journal_dir, const std::string& record_dir) {
  ReplayOptions options;
  options.journal_dir = journal_dir;
  options.output_dir =
      record_dir.empty() ? journal_dir + ".replay" : record_dir;
  auto result = ReplayJournal(options);
  if (!result.ok()) return Fail(result.status());
  std::printf("replayed %s (%s mode): %llu attempt(s), %llu batch(es), "
              "re-recorded into %s\n",
              journal_dir.c_str(), result->mode.c_str(),
              static_cast<unsigned long long>(result->attempts),
              static_cast<unsigned long long>(result->batches),
              options.output_dir.c_str());
  if (!result->manifest_match) {
    std::printf("MANIFEST MISMATCH: the replayed engine options do not "
                "round-trip\n");
  }
  WriteDiffText(result->diff, &std::cout);
  return result->BitIdentical() ? 0 : 4;
}

/// --queries mode: N tenant specs multiplexed over one shared stream by the
/// weighted-fair TenantScheduler (src/tenant/).
int RunMultiTenant(const std::string& queries_path, DatasetId dataset,
                   double rate, int batches, int tasks, double zipf,
                   double scale, int seed, int ingest_shards,
                   AccumulatorKind accumulator, KeyMode key_mode,
                   int sketch_capacity, double map_us, bool metrics,
                   int metrics_every, const std::string& metrics_path,
                   int serve_port, int serve_hold_ms,
                   const std::string& autopsy_path,
                   const StoreOptions& store, const std::string& scenario_spec,
                   const std::string& record_dir) {
  auto specs = LoadQueryFile(queries_path);
  if (!specs.ok()) return Fail(specs.status());

  const TimeMicros slide = (*specs)[0].query.slide;
  auto profile = std::make_shared<SinusoidalRate>(rate, 0.3, 4 * slide);
  auto source = MakeDataset(dataset, profile, static_cast<uint64_t>(seed),
                            zipf, scale);
  if (!scenario_spec.empty()) {
    auto scenario =
        MakeScenario(scenario_spec, rate, static_cast<uint64_t>(seed));
    if (!scenario.ok()) return Fail(scenario.status());
    source = std::move(scenario->source);
  }

  MultiTenantEngineOptions options;
  options.batch_interval = slide;
  options.total_slots = static_cast<uint32_t>(tasks);
  options.map_tasks = static_cast<uint32_t>(tasks);
  options.reduce_tasks = static_cast<uint32_t>(tasks);
  options.ingest.shards = static_cast<uint32_t>(ingest_shards);
  options.ingest.accumulator = accumulator;
  options.ingest.key_mode = key_mode;
  if (sketch_capacity > 0) {
    options.ingest.accumulator_options.sketch.capacity =
        static_cast<size_t>(sketch_capacity);
  }
  options.adapt_base.config.prompt.accumulator_kind = accumulator;
  options.cost.map_per_tuple_us = map_us;
  options.cost.map_per_key_us = map_us / 4;
  options.cost.reduce_per_tuple_us = map_us / 8;
  options.cost.reduce_per_cluster_us = map_us * 2;
  options.cost.map_task_fixed_us = 2000;
  options.cost.reduce_task_fixed_us = 2000;
  options.obs.collect_partition_metrics = metrics;
  options.obs.metrics_every = static_cast<uint32_t>(metrics_every);
  options.obs.metrics_path = metrics_path;
  options.obs.serve_port = serve_port;
  options.obs.autopsy_path = autopsy_path;
  if (!autopsy_path.empty()) {
    options.obs.autopsy_enabled = true;
    options.obs.collect_partition_metrics = true;
  }

  options.store = store;
  options.journal.dir = record_dir;

  auto engine = MultiTenantEngine::Create(options, *specs, source.get());
  if (!engine.ok()) return Fail(engine.status());
  MultiTenantEngine& mt = **engine;
  if (store.enabled() && mt.durable_recovery().batches_recovered > 0) {
    std::printf("durable store: recovered %llu batch(es) from %s%s\n",
                static_cast<unsigned long long>(
                    mt.durable_recovery().batches_recovered),
                store.dir.c_str(),
                mt.durable_recovery().data_loss ? "  DATA LOSS" : "");
  }

  if (const HttpExporter* exporter = mt.observability()->exporter();
      exporter != nullptr) {
    std::printf("serving telemetry on http://127.0.0.1:%u  "
                "(/metrics /tenants.json /timeseries.json?tenant=<id>)\n",
                exporter->port());
  }
  std::printf("dataset=%s rate=%.0f/s interval=%lldms slots=%d tenants=%zu\n",
              DatasetName(dataset), rate,
              static_cast<long long>(slide / 1000), tasks, mt.tenants());

  MultiTenantRunSummary summary = mt.Run(static_cast<uint32_t>(batches));

  bool all_stable = true;
  for (size_t t = 0; t < summary.tenants.size(); ++t) {
    const TenantRunResult& result = summary.tenants[t];
    const TenantQuerySpec& spec = (*specs)[t];
    std::printf("\ntenant %s  weight=%u keys=%s query=\"%s\"\n",
                result.id.c_str(), spec.weight,
                spec.filter.ToString().c_str(), spec.query.text.c_str());
    TableSink table(&std::cout, /*column_width=*/10);
    for (const BatchReport& b : result.summary.batches) {
      Record row;
      row.Set("batch", b.batch_id)
          .Set("tuples", b.num_tuples)
          .Set("keys", b.num_keys)
          .Set("proc_ms", static_cast<double>(b.processing_time) / 1000.0)
          .Set("W", b.w)
          .Set("lat_ms", static_cast<double>(b.latency) / 1000.0);
      if (spec.adaptive) {
        row.Set("tech", b.technique >= 0
                            ? PartitionerTypeName(
                                  static_cast<PartitionerType>(b.technique))
                            : "?");
      }
      table.Write(row);
    }

    const uint32_t k = spec.query.top_k > 0 ? spec.query.top_k : 5;
    std::printf("top-%u keys in %s's window:\n", k, result.id.c_str());
    for (const KV& kv : mt.window(t).TopK(k)) {
      std::printf("  %016llx  %.2f\n",
                  static_cast<unsigned long long>(kv.key), kv.value);
    }
    std::printf("%s: slots=%llu mean W=%.2f  %s\n", result.id.c_str(),
                static_cast<unsigned long long>(result.slots_granted),
                result.summary.MeanW(2),
                result.summary.stable
                    ? "stable"
                    : "UNSTABLE (back-pressure would engage)");
    all_stable = all_stable && result.summary.stable;
    for (const RunSummary::TechniqueSwitch& s :
         result.summary.technique_switches) {
      std::printf("  after batch %llu: %s -> %s (%s)\n",
                  static_cast<unsigned long long>(s.after_batch),
                  PartitionerTypeName(s.from), PartitionerTypeName(s.to),
                  s.reason.c_str());
    }
  }
  if (!autopsy_path.empty()) {
    std::printf("\n(wrote per-tenant autopsy rows to %s)\n",
                autopsy_path.c_str());
  }
  if (!record_dir.empty()) {
    std::printf("(recorded run journal to %s — promptctl --replay=%s)\n",
                record_dir.c_str(), record_dir.c_str());
  }
  if (mt.observability()->exporter() != nullptr && serve_hold_ms > 0) {
    std::printf("holding telemetry server for %dms...\n", serve_hold_ms);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(serve_hold_ms));
  }
  return all_stable ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  if (flags.GetBool("list", false).ValueOr(false)) return ListOptions();

  auto dataset = DatasetFromName(flags.GetString("dataset", "SynD"));
  if (!dataset.ok()) return Fail(dataset.status());
  auto technique = PartitionerTypeFromName(flags.GetString("technique", "Prompt"));
  if (!technique.ok()) return Fail(technique.status());
  auto rate = flags.GetDouble("rate", 8000);
  if (!rate.ok()) return Fail(rate.status());
  auto interval_ms = flags.GetInt("interval_ms", 1000);
  if (!interval_ms.ok()) return Fail(interval_ms.status());
  auto batches = flags.GetInt("batches", 20);
  if (!batches.ok()) return Fail(batches.status());
  auto tasks = flags.GetInt("tasks", 16);
  if (!tasks.ok()) return Fail(tasks.status());
  auto zipf = flags.GetDouble("zipf", 1.0);
  if (!zipf.ok()) return Fail(zipf.status());
  auto scale = flags.GetDouble("cardinality_scale", 0.02);
  if (!scale.ok()) return Fail(scale.status());
  auto seed = flags.GetInt("seed", 42);
  if (!seed.ok()) return Fail(seed.status());
  auto ingest_shards = flags.GetInt("ingest_shards", 1);
  if (!ingest_shards.ok()) return Fail(ingest_shards.status());
  if (*ingest_shards < 1) {
    return Fail(Status::Invalid("--ingest_shards must be >= 1"));
  }
  const std::string accumulator_name = flags.GetString("accumulator", "flat");
  AccumulatorKind accumulator = AccumulatorKind::kFlat;
  if (!ParseAccumulatorKind(accumulator_name, &accumulator)) {
    return Fail(Status::Invalid("--accumulator must be 'flat' or 'legacy'"));
  }
  const std::string key_mode_name = flags.GetString("key_mode", "exact");
  KeyMode key_mode = KeyMode::kExact;
  if (!ParseKeyMode(key_mode_name, &key_mode)) {
    return Fail(Status::Invalid("--key_mode must be 'exact' or 'sketch'"));
  }
  auto sketch_capacity = flags.GetInt("sketch_capacity", 0);
  if (!sketch_capacity.ok()) return Fail(sketch_capacity.status());
  if (*sketch_capacity < 0) {
    return Fail(Status::Invalid("--sketch_capacity must be >= 0"));
  }
  auto elastic = flags.GetBool("elastic", false);
  if (!elastic.ok()) return Fail(elastic.status());
  auto adaptive = flags.GetBool("adaptive", false);
  if (!adaptive.ok()) return Fail(adaptive.status());
  const std::string adapt_candidates =
      flags.GetString("adapt_candidates", "Hash,PK2,Prompt");
  auto adapt_d = flags.GetInt("adapt_d", 3);
  if (!adapt_d.ok()) return Fail(adapt_d.status());
  if (*adapt_d < 1) return Fail(Status::Invalid("--adapt_d must be >= 1"));
  auto metrics = flags.GetBool("metrics", false);
  if (!metrics.ok()) return Fail(metrics.status());
  // Virtual cost of one tuple's Map work (µs); scales all other cost-model
  // terms proportionally so W is meaningful at CLI scales.
  auto map_us = flags.GetDouble("map_us", 200);
  if (!map_us.ok()) return Fail(map_us.status());
  auto metrics_every = flags.GetInt("metrics_every", 0);
  if (!metrics_every.ok()) return Fail(metrics_every.status());
  if (*metrics_every < 0) {
    return Fail(Status::Invalid("--metrics_every must be >= 0"));
  }
  auto serve_port = flags.GetInt("serve_metrics_port", -1);
  if (!serve_port.ok()) return Fail(serve_port.status());
  if (*serve_port > 65535) {
    return Fail(Status::Invalid("--serve_metrics_port must be <= 65535"));
  }
  auto serve_hold_ms = flags.GetInt("serve_hold_ms", 0);
  if (!serve_hold_ms.ok()) return Fail(serve_hold_ms.status());
  auto explain_batch = flags.GetInt("explain", -1);
  if (!explain_batch.ok()) return Fail(explain_batch.status());
  const std::string autopsy_path = flags.GetString("autopsy_out", "");
  const std::string trace_path = flags.GetString("trace_out", "");
  const std::string metrics_path = flags.GetString("metrics_out", "");
  const std::string csv_path = flags.GetString("csv", "");
  const std::string fault_spec = flags.GetString("fault_schedule", "");
  auto nodes = flags.GetInt("nodes", 4);
  if (!nodes.ok()) return Fail(nodes.status());
  auto cores_per_node = flags.GetInt("cores_per_node", 4);
  if (!cores_per_node.ok()) return Fail(cores_per_node.status());
  auto replication = flags.GetInt("replication", 2);
  if (!replication.ok()) return Fail(replication.status());
  auto cluster = flags.GetBool("cluster", false);
  if (!cluster.ok()) return Fail(cluster.status());
  const std::string query_text =
      flags.GetString("query", "SELECT COUNT TOP 10 WINDOW 10S");
  const std::string queries_path = flags.GetString("queries", "");
  const std::string store_dir = flags.GetString("store_dir", "");
  auto fsync = ParseFsyncPolicy(flags.GetString("fsync", "batch"));
  if (!fsync.ok()) return Fail(fsync.status());
  auto memory_budget_mb = flags.GetInt("memory_budget_mb", 0);
  if (!memory_budget_mb.ok()) return Fail(memory_budget_mb.status());
  if (*memory_budget_mb < 0) {
    return Fail(Status::Invalid("--memory_budget_mb must be >= 0"));
  }
  auto recover_only = flags.GetBool("recover_only", false);
  if (!recover_only.ok()) return Fail(recover_only.status());
  auto crash_after = flags.GetInt("crash_after", -1);
  if (!crash_after.ok()) return Fail(crash_after.status());
  if ((*recover_only || *crash_after >= 0) && store_dir.empty()) {
    return Fail(Status::Invalid(
        "--recover_only/--crash_after need --store_dir (nothing durable "
        "survives a crash without it)"));
  }
  auto retain_bytes = flags.GetInt("retain_bytes", 0);
  if (!retain_bytes.ok()) return Fail(retain_bytes.status());
  auto retain_batches = flags.GetInt("retain_batches", 0);
  if (!retain_batches.ok()) return Fail(retain_batches.status());
  if (*retain_bytes < 0 || *retain_batches < 0) {
    return Fail(Status::Invalid("--retain_bytes/--retain_batches must be >= 0"));
  }
  const std::string record_dir = flags.GetString("record", "");
  const std::string replay_dir = flags.GetString("replay", "");
  const std::string diff_spec = flags.GetString("diff", "");
  const std::string scenario_spec = flags.GetString("scenario", "");
  StoreOptions store_options;
  store_options.dir = store_dir;
  store_options.fsync = *fsync;
  store_options.memory_budget_bytes =
      static_cast<size_t>(*memory_budget_mb) << 20;
  store_options.retain_bytes = static_cast<size_t>(*retain_bytes);
  store_options.retain_batches = static_cast<uint64_t>(*retain_batches);
  for (const std::string& unknown : flags.UnknownFlags()) {
    std::fprintf(stderr, "promptctl: unknown flag --%s (try --list)\n",
                 unknown.c_str());
    return 1;
  }

  if (!diff_spec.empty()) return RunDiff(diff_spec);
  if (!replay_dir.empty()) return RunReplay(replay_dir, record_dir);

  if (!queries_path.empty()) {
    // Multi-tenant serving: the spec file replaces --query/--technique.
    return RunMultiTenant(queries_path, *dataset, *rate, *batches, *tasks,
                          *zipf, *scale, *seed, *ingest_shards, accumulator,
                          key_mode, *sketch_capacity, *map_us, *metrics,
                          *metrics_every, metrics_path, *serve_port,
                          *serve_hold_ms, autopsy_path, store_options,
                          scenario_spec, record_dir);
  }

  auto query = ParseQuery(query_text);
  if (!query.ok()) return Fail(query.status());
  if (query->slide != Millis(*interval_ms)) {
    // The slide is the batch interval; keep them consistent.
    std::fprintf(stderr,
                 "note: query SLIDE %lldms overrides --interval_ms\n",
                 static_cast<long long>(query->slide / 1000));
  }

  auto profile = std::make_shared<SinusoidalRate>(*rate, 0.3,
                                                  4 * query->slide);
  auto source = MakeDataset(*dataset, profile, static_cast<uint64_t>(*seed),
                            *zipf, *scale);
  if (!scenario_spec.empty()) {
    auto scenario =
        MakeScenario(scenario_spec, *rate, static_cast<uint64_t>(*seed));
    if (!scenario.ok()) return Fail(scenario.status());
    source = std::move(scenario->source);
  }

  EngineOptions options;
  options.batch_interval = query->slide;
  options.map_tasks = static_cast<uint32_t>(*tasks);
  options.reduce_tasks = static_cast<uint32_t>(*tasks);
  options.cores = static_cast<uint32_t>(*tasks);
  options.obs.collect_partition_metrics = *metrics;
  options.obs.trace_path = trace_path;
  options.obs.metrics_every = static_cast<uint32_t>(*metrics_every);
  options.obs.metrics_path = metrics_path;
  options.obs.serve_port = *serve_port;
  options.obs.autopsy_path = autopsy_path;
  if (*explain_batch >= 0 || !autopsy_path.empty()) {
    options.obs.autopsy_enabled = true;
    // The straggler/split-key rules read the partition-metrics pass.
    options.obs.collect_partition_metrics = true;
  }
  options.ingest.shards = static_cast<uint32_t>(*ingest_shards);
  options.ingest.accumulator = accumulator;
  options.ingest.key_mode = key_mode;
  if (*sketch_capacity > 0) {
    options.ingest.accumulator_options.sketch.capacity =
        static_cast<size_t>(*sketch_capacity);
  }
  // Keep the partitioner's own accumulator (single-threaded path) and any
  // adaptive-switch replacements on the same implementation.
  PartitionerConfig partitioner_config;
  partitioner_config.prompt.accumulator_kind = accumulator;
  // adapt.config is also what the flight recorder's manifest records as the
  // construction config, so keep it literally the config passed to
  // CreatePartitioner below.
  options.adapt.config = partitioner_config;
  options.cost.map_per_tuple_us = *map_us;
  options.cost.map_per_key_us = *map_us / 4;
  options.cost.reduce_per_tuple_us = *map_us / 8;
  options.cost.reduce_per_cluster_us = *map_us * 2;
  options.cost.map_task_fixed_us = 2000;
  options.cost.reduce_task_fixed_us = 2000;
  options.use_prompt_reduce = *technique == PartitionerType::kPrompt ||
                              *technique == PartitionerType::kPromptPostSort;
  if (*adaptive) {
    options.adapt.enabled = true;
    options.adapt.d = *adapt_d;
    options.adapt.candidates.clear();
    std::string rest = adapt_candidates;
    while (!rest.empty()) {
      const size_t comma = rest.find(',');
      const std::string token = rest.substr(0, comma);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      if (token.empty()) continue;
      auto candidate = PartitionerTypeFromName(token);
      if (!candidate.ok()) return Fail(candidate.status());
      options.adapt.candidates.push_back(*candidate);
    }
    if (options.adapt.candidates.empty()) {
      return Fail(Status::Invalid("--adapt_candidates must name >= 1 technique"));
    }
    if (std::find(options.adapt.candidates.begin(),
                  options.adapt.candidates.end(),
                  *technique) == options.adapt.candidates.end()) {
      return Fail(Status::Invalid(
          std::string("--technique=") + PartitionerTypeName(*technique) +
          " must be one of --adapt_candidates=" + adapt_candidates));
    }
    // The reduce allocator stays fixed across switches (only the batching
    // technique adapts); Worst-Fit handles every candidate's buckets well.
    options.use_prompt_reduce = true;
  }
  if (*elastic) {
    options.elasticity_enabled = true;
    options.cores_track_tasks = true;
    options.elasticity.max_map_tasks = 256;
    options.elasticity.max_reduce_tasks = 256;
  }
  if (!fault_spec.empty()) {
    auto faults = ParseFaultSchedule(fault_spec);
    if (!faults.ok()) return Fail(faults.status());
    options.faults = *faults;
  }
  if (*cluster || !fault_spec.empty() || store_options.enabled()) {
    // Fault injection targets nodes and the durable store backs the node
    // replica tier, so either one implies cluster mode.
    options.cluster_enabled = true;
    options.cluster.nodes = static_cast<uint32_t>(*nodes);
    options.cluster.cores_per_node = static_cast<uint32_t>(*cores_per_node);
    options.cluster.replication_factor = static_cast<uint32_t>(*replication);
    options.cores = options.cluster.nodes * options.cluster.cores_per_node;
  }
  options.store = store_options;
  if (!record_dir.empty()) {
    options.journal.dir = record_dir;
    // Journaling the query text lets replay rebuild the job (map/reduce
    // logic, window, top-k) instead of assuming word count.
    options.journal.query = query_text;
  }

  MicroBatchEngine engine(options, query->job,
                          CreatePartitioner(*technique, partitioner_config),
                          source.get());
  if (const Status& st = engine.observability()->init_status(); !st.ok()) {
    return Fail(st);
  }
  if (const Status& st = engine.init_status(); !st.ok()) {
    // A requested --store_dir that cannot be opened must never silently
    // degrade to memory-only (or report a crash drill as "recovered 0").
    return Fail(st);
  }
  if (store_options.enabled()) {
    const MicroBatchEngine::DurableRecovery& rec = engine.durable_recovery();
    if (rec.batches_recovered > 0 || *recover_only) {
      std::printf("durable store: recovered %llu batch(es)",
                  static_cast<unsigned long long>(rec.batches_recovered));
      if (rec.batches_recovered > 0) {
        std::printf(" [%llu..%llu]",
                    static_cast<unsigned long long>(rec.first_recovered_batch),
                    static_cast<unsigned long long>(rec.last_recovered_batch));
      }
      std::printf(" torn_records=%llu%s\n",
                  static_cast<unsigned long long>(rec.torn_records),
                  rec.data_loss ? "  DATA LOSS" : "");
    }
  }
  if (*recover_only) {
    // Restart half of a crash drill: the constructor already replayed the
    // store into the window — print the recovered answer and stop.
    const uint32_t k = query->top_k > 0 ? query->top_k : 10;
    std::printf("\ntop-%u keys in the window:\n", k);
    for (const KV& kv : engine.window().TopK(k)) {
      std::printf("  %016llx  %.2f\n",
                  static_cast<unsigned long long>(kv.key), kv.value);
    }
    std::printf("\n");  // same block shape as a full run, for diffing
    return engine.durable_recovery().data_loss ? 3 : 0;
  }
  if (const HttpExporter* exporter = engine.observability()->exporter();
      exporter != nullptr) {
    std::printf("serving telemetry on http://127.0.0.1:%u  "
                "(/metrics /timeseries.json /healthz)\n",
                exporter->port());
  }

  std::printf(
      "dataset=%s technique=%s accumulator=%s rate=%.0f/s interval=%lldms "
      "query=\"%s\"\n\n",
      DatasetName(*dataset), PartitionerTypeName(*technique),
      AccumulatorKindName(accumulator), *rate,
      static_cast<long long>(query->slide / 1000), query_text.c_str());

  if (*crash_after >= 0) {
    // Crash drill: process some batches, then die the way a power cut would
    // — no destructors, no flushes beyond what --fsync already forced.
    engine.Run(static_cast<uint32_t>(*crash_after));
    std::printf("crash drill: dying by SIGKILL after %lld batch(es)\n",
                static_cast<long long>(*crash_after));
    std::fflush(stdout);
    std::raise(SIGKILL);
  }

  RunSummary summary = engine.Run(static_cast<uint32_t>(*batches));
  TableSink table(&std::cout, /*column_width=*/10);
  for (const BatchReport& b : summary.batches) {
    Record row;
    row.Set("batch", b.batch_id)
        .Set("tuples", b.num_tuples)
        .Set("keys", b.num_keys)
        .Set("proc_ms", static_cast<double>(b.processing_time) / 1000.0)
        .Set("W", b.w)
        .Set("map", b.map_tasks)
        .Set("red", b.reduce_tasks)
        .Set("lat_ms", static_cast<double>(b.latency) / 1000.0);
    if (*adaptive) {
      row.Set("tech", b.technique >= 0
                          ? PartitionerTypeName(
                                static_cast<PartitionerType>(b.technique))
                          : "?");
    }
    if (*metrics) {
      row.Set("bsi", b.partition_metrics.bsi)
          .Set("ksr", b.partition_metrics.ksr);
    }
    if (key_mode == KeyMode::kSketch) {
      row.Set("cov", b.sketch.head_coverage());
    }
    table.Write(row);
  }

  if (*explain_batch >= 0) {
    const auto id = static_cast<uint64_t>(*explain_batch);
    const BatchReport* target = nullptr;
    for (const BatchReport& b : summary.batches) {
      if (b.batch_id == id) target = &b;
    }
    if (target == nullptr) {
      return Fail(Status::OutOfRange("--explain=" + std::to_string(id) +
                                     ": run produced batches 0.." +
                                     std::to_string(summary.batches.size() - 1)));
    }
    std::printf("\n");
    WriteAutopsyText(ExplainBatch(*target, options.obs.autopsy), *target,
                     &std::cout);
  }

  if (!trace_path.empty()) {
    std::printf("\n(wrote %zu batch traces to %s)\n", summary.batches.size(),
                trace_path.c_str());
  }
  if (!record_dir.empty()) {
    std::printf("\n(recorded run journal to %s — promptctl --replay=%s)\n",
                record_dir.c_str(), record_dir.c_str());
  }
  if (!csv_path.empty()) {
    if (auto st = WriteReportsCsvFile(summary.batches, csv_path); !st.ok()) {
      return Fail(st);
    }
    std::printf("\n(wrote %zu batch reports to %s)\n",
                summary.batches.size(), csv_path.c_str());
  }

  const uint32_t k = query->top_k > 0 ? query->top_k : 10;
  std::printf("\ntop-%u keys in the window:\n", k);
  for (const KV& kv : engine.window().TopK(k)) {
    std::printf("  %016llx  %.2f\n",
                static_cast<unsigned long long>(kv.key), kv.value);
  }
  std::printf("\nmean W=%.2f  throughput=%.0f tuples/s  %s\n",
              summary.MeanW(2),
              summary.MeanThroughputTuplesPerSec(query->slide, 2),
              summary.stable ? "stable" : "UNSTABLE (back-pressure would engage)");
  if (key_mode == KeyMode::kSketch) {
    std::printf("sketch: mean head coverage=%.3f  peak_rss=%.1f MB\n",
                MeanHeadCoverage(summary.batches),
                static_cast<double>(PeakRssBytes()) / (1024.0 * 1024.0));
  }
  if (summary.failures_recovered > 0 || summary.batches_replayed > 0 ||
      summary.tasks_retried > 0 || summary.tasks_speculated > 0) {
    std::printf(
        "recovery: failures=%llu replayed=%llu retried=%llu speculated=%llu "
        "max_latency=%.1fms%s\n",
        static_cast<unsigned long long>(summary.failures_recovered),
        static_cast<unsigned long long>(summary.batches_replayed),
        static_cast<unsigned long long>(summary.tasks_retried),
        static_cast<unsigned long long>(summary.tasks_speculated),
        static_cast<double>(summary.max_recovery_time) / 1000.0,
        summary.data_loss ? "  DATA LOSS (raise --replication)" : "");
  }
  if (summary.crashed) {
    std::printf("crash injected at batch %llu%s\n",
                static_cast<unsigned long long>(summary.crashed_at_batch),
                store_options.enabled()
                    ? "; rerun with --recover_only to replay the store"
                    : " (no --store_dir: nothing survives)");
  }
  if (*adaptive) {
    std::printf("adaptive: %llu switch(es) (up=%llu down=%llu)\n",
                static_cast<unsigned long long>(
                    summary.technique_switches.size()),
                static_cast<unsigned long long>(summary.technique_switches_up),
                static_cast<unsigned long long>(
                    summary.technique_switches_down));
    for (const RunSummary::TechniqueSwitch& s : summary.technique_switches) {
      std::printf("  after batch %llu: %s -> %s (%s)\n",
                  static_cast<unsigned long long>(s.after_batch),
                  PartitionerTypeName(s.from), PartitionerTypeName(s.to),
                  s.reason.c_str());
    }
  }
  if (engine.observability()->exporter() != nullptr && *serve_hold_ms > 0) {
    std::printf("holding telemetry server for %lldms...\n",
                static_cast<long long>(*serve_hold_ms));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(*serve_hold_ms));
  }
  return summary.stable ? 0 : 2;
}
