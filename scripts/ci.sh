#!/usr/bin/env bash
# Tier-1 CI entry point: configure, build (the project compiles with
# -Wall -Wextra; CI additionally promotes warnings to errors), run the full
# test suite, and leave the ctest log at $LOG_DIR/ctest.log for upload.
#
# Usage: scripts/ci.sh [build-dir]
# Env:   LOG_DIR     where to write logs (default: <build-dir>)
#        SANITIZE    '', 'thread', or 'address' — forwarded to PROMPT_SANITIZE
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"
LOG_DIR="${LOG_DIR:-${BUILD_DIR}}"
SANITIZE="${SANITIZE:-}"
mkdir -p "${LOG_DIR}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_CXX_FLAGS="-Werror" \
  -DPROMPT_SANITIZE="${SANITIZE}"
cmake --build "${BUILD_DIR}" -j "$(nproc)" 2>&1 | tee "${LOG_DIR}/build.log"

cd "${BUILD_DIR}"
ctest --output-on-failure -j "$(nproc)" 2>&1 | tee "${LOG_DIR}/ctest.log"
