#!/usr/bin/env bash
# Tier-1 CI entry point: configure, build (the project compiles with
# -Wall -Wextra; CI additionally promotes warnings to errors), run the full
# test suite, and leave the ctest log at $LOG_DIR/ctest.log for upload.
#
# Usage: scripts/ci.sh [build-dir]
# Env:   LOG_DIR     where to write logs (default: <build-dir>)
#        SANITIZE    '', 'thread', or 'address' — forwarded to PROMPT_SANITIZE
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"
LOG_DIR="${LOG_DIR:-${BUILD_DIR}}"
SANITIZE="${SANITIZE:-}"
mkdir -p "${LOG_DIR}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_CXX_FLAGS="-Werror" \
  -DPROMPT_SANITIZE="${SANITIZE}"
cmake --build "${BUILD_DIR}" -j "$(nproc)" 2>&1 | tee "${LOG_DIR}/build.log"

# No cd: a relative LOG_DIR must keep resolving from the repo root, or the
# tee above would fail (and with pipefail, kill the script) after ctest.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" 2>&1 \
  | tee "${LOG_DIR}/ctest.log"

# Observability smoke: a short sharded Zipf run with tracing on must produce
# exactly one JSONL trace record per batch. The trace lands in $LOG_DIR for
# artifact upload.
"${BUILD_DIR}/tools/promptctl" --dataset=SynD --technique=Prompt \
  --rate=4000 --batches=5 --ingest_shards=2 --zipf=1.0 \
  --trace_out="${LOG_DIR}/smoke-trace.jsonl" --metrics_every=5 \
  2>&1 | tee "${LOG_DIR}/smoke.log"
TRACE_LINES="$(wc -l < "${LOG_DIR}/smoke-trace.jsonl")"
if [[ "${TRACE_LINES}" -ne 5 ]]; then
  echo "observability smoke: expected 5 trace records, got ${TRACE_LINES}" >&2
  exit 1
fi

# Accumulator parity smoke: the same seeded run through each accumulator
# kind must print a byte-identical TOP-K table — the flat rewrite is only
# allowed to be faster, never different. (Only the table body is compared;
# the run header names the kind and the footer has wall-clock figures.)
for KIND in flat legacy; do
  "${BUILD_DIR}/tools/promptctl" --dataset=SynD --technique=Prompt \
    --rate=4000 --batches=5 --ingest_shards=2 --zipf=1.0 \
    --accumulator="${KIND}" \
    2>&1 | tee "${LOG_DIR}/accumulator-${KIND}-smoke.log"
  sed -n '/^top-/,/^$/p' "${LOG_DIR}/accumulator-${KIND}-smoke.log" \
    > "${LOG_DIR}/accumulator-${KIND}-topk.txt"
done
if ! diff -u "${LOG_DIR}/accumulator-legacy-topk.txt" \
            "${LOG_DIR}/accumulator-flat-topk.txt"; then
  echo "accumulator smoke: flat and legacy TOP-K tables diverge" >&2
  exit 1
fi
echo "accumulator smoke: flat/legacy TOP-K tables identical"

# Heavy-hitter smoke (DESIGN.md §17): a 1M-key sketch-mode run
# (--cardinality_scale=1.0 puts SynD at its full Table-1 cardinality) must
# stay inside a peak-RSS budget and report nonzero head coverage — i.e. the
# sketch actually promoted heavy keys instead of degenerating to
# tail-only hashing.
"${BUILD_DIR}/tools/promptctl" --dataset=SynD --technique=Prompt \
  --rate=50000 --batches=5 --ingest_shards=2 --zipf=1.0 \
  --cardinality_scale=1.0 --key_mode=sketch --sketch_capacity=4096 \
  2>&1 | tee "${LOG_DIR}/sketch-smoke.log"
SKETCH_COV="$(sed -n 's/^sketch: mean head coverage=\([0-9.]*\).*/\1/p' \
  "${LOG_DIR}/sketch-smoke.log")"
SKETCH_RSS_MB="$(sed -n 's/.*peak_rss=\([0-9.]*\) MB$/\1/p' \
  "${LOG_DIR}/sketch-smoke.log")"
if [[ -z "${SKETCH_COV}" || -z "${SKETCH_RSS_MB}" ]]; then
  echo "sketch smoke: coverage/peak-RSS footer missing from promptctl output" >&2
  exit 1
fi
python3 - "${SKETCH_COV}" "${SKETCH_RSS_MB}" <<'PYEOF'
import sys
coverage, peak_mb = float(sys.argv[1]), float(sys.argv[2])
if coverage <= 0.0:
    sys.exit(f"sketch smoke: head coverage {coverage} must be > 0")
if peak_mb > 128.0:
    sys.exit(f"sketch smoke: peak RSS {peak_mb} MB exceeds the 128 MB budget")
PYEOF
echo "sketch smoke: head coverage ${SKETCH_COV} > 0," \
  "peak RSS ${SKETCH_RSS_MB} MB <= 128 MB"

# Adaptive-switching smoke: a near-uniform run started on Prompt must shed
# robustness (>= 1 technique switch), and every switch must be annotated in
# the trace as an adapt_switch span on the first batch after it.
"${BUILD_DIR}/tools/promptctl" --dataset=SynD --technique=Prompt \
  --rate=4000 --batches=12 --zipf=0.1 --adaptive \
  --trace_out="${LOG_DIR}/adaptive-smoke-trace.jsonl" \
  2>&1 | tee "${LOG_DIR}/adaptive-smoke.log"
SWITCH_SPANS="$(grep -c 'adapt_switch:' "${LOG_DIR}/adaptive-smoke-trace.jsonl")"
if [[ "${SWITCH_SPANS}" -lt 1 ]]; then
  echo "adaptive smoke: expected >=1 adapt_switch trace span, got ${SWITCH_SPANS}" >&2
  exit 1
fi
grep -q 'adaptive: .* switch' "${LOG_DIR}/adaptive-smoke.log" || {
  echo "adaptive smoke: summary line missing from promptctl output" >&2
  exit 1
}

# Telemetry exporter smoke: hold promptctl's embedded HTTP server open after
# a short run and scrape it. Validates the Prometheus exposition and the
# time-series JSON end to end (outside the in-process unit tests).
EXPORT_PORT=19123
"${BUILD_DIR}/tools/promptctl" --dataset=SynD --technique=Prompt \
  --rate=4000 --batches=5 --ingest_shards=2 --zipf=1.0 \
  --serve_metrics_port="${EXPORT_PORT}" --serve_hold_ms=10000 \
  > "${LOG_DIR}/exporter-smoke.log" 2>&1 &
EXPORT_PID=$!
# Poll /timeseries.json until the exporter is up AND the run has completed
# (batches_seen reaches 5) — scraping /metrics mid-run would race the count.
SCRAPE_OK=0
for _ in $(seq 1 50); do
  if curl -fsS "http://127.0.0.1:${EXPORT_PORT}/timeseries.json" \
       -o "${LOG_DIR}/exporter-timeseries.json" 2>/dev/null \
     && python3 -c "
import json, sys
doc = json.load(open('${LOG_DIR}/exporter-timeseries.json'))
sys.exit(0 if doc['batches_seen'] == 5 and len(doc['points']) == 5 else 1)
" 2>/dev/null; then
    SCRAPE_OK=1
    break
  fi
  sleep 0.2
done
if [[ "${SCRAPE_OK}" -ne 1 ]]; then
  echo "exporter smoke: /timeseries.json never reported the full run" >&2
  kill "${EXPORT_PID}" 2>/dev/null || true
  exit 1
fi
curl -fsS "http://127.0.0.1:${EXPORT_PORT}/metrics" \
  -o "${LOG_DIR}/exporter-metrics.txt"
curl -fsS "http://127.0.0.1:${EXPORT_PORT}/healthz" > /dev/null
kill "${EXPORT_PID}" 2>/dev/null || true
wait "${EXPORT_PID}" 2>/dev/null || true
grep -q '^# TYPE prompt_batches_total counter' "${LOG_DIR}/exporter-metrics.txt"
grep -q '^prompt_batches_total 5' "${LOG_DIR}/exporter-metrics.txt"
grep -q '^prompt_batch_latency_us{quantile="0.99"}' "${LOG_DIR}/exporter-metrics.txt"
echo "exporter smoke: /metrics, /timeseries.json, /healthz OK"

# Multi-tenant smoke: two tenants share one ingest stream; each must emit
# its own tenant-labeled autopsy stream (one JSONL row per tenant per batch)
# and the adaptive tenant's escalation must land in the run summary.
"${BUILD_DIR}/tools/promptctl" --queries=examples/two_tenants.query \
  --dataset=SynD --rate=8000 --batches=10 --zipf=1.2 \
  --autopsy_out="${LOG_DIR}/mt-smoke-autopsy.jsonl" \
  2>&1 | tee "${LOG_DIR}/mt-smoke.log"
CALM_ROWS="$(grep -c '"tenant":"calm"' "${LOG_DIR}/mt-smoke-autopsy.jsonl")"
NOISY_ROWS="$(grep -c '"tenant":"noisy"' "${LOG_DIR}/mt-smoke-autopsy.jsonl")"
if [[ "${CALM_ROWS}" -ne 10 || "${NOISY_ROWS}" -ne 10 ]]; then
  echo "multi-tenant smoke: expected 10 autopsy rows per tenant," \
    "got calm=${CALM_ROWS} noisy=${NOISY_ROWS}" >&2
  exit 1
fi
grep -q '^tenant calm' "${LOG_DIR}/mt-smoke.log" || {
  echo "multi-tenant smoke: calm tenant section missing" >&2
  exit 1
}
grep -q '^tenant noisy' "${LOG_DIR}/mt-smoke.log" || {
  echo "multi-tenant smoke: noisy tenant section missing" >&2
  exit 1
}
echo "multi-tenant smoke: per-tenant autopsy streams OK"

# Crash-restart durability smoke: run with a durable store and SIGKILL the
# process mid-run (--crash_after raises SIGKILL from inside promptctl — a
# real process death, not a simulated one), then restart in --recover_only
# mode. The recovered TOP-K table must be byte-identical to an uninterrupted
# run of the surviving prefix; fsync=batch means zero torn records here.
# (The store's unit tests themselves run under ctest above, so SANITIZE
# builds cover the segment/recovery code paths too.)
STORE_DIR="${LOG_DIR}/crash-smoke-store"
REF_STORE="${LOG_DIR}/crash-smoke-ref-store"
rm -rf "${STORE_DIR}" "${REF_STORE}"
"${BUILD_DIR}/tools/promptctl" --dataset=SynD --technique=Prompt \
  --rate=4000 --batches=6 --zipf=1.0 \
  --store_dir="${REF_STORE}" --fsync=batch \
  2>&1 | tee "${LOG_DIR}/crash-smoke-ref.log"
set +e
"${BUILD_DIR}/tools/promptctl" --dataset=SynD --technique=Prompt \
  --rate=4000 --batches=12 --zipf=1.0 \
  --store_dir="${STORE_DIR}" --fsync=batch --crash_after=6 \
  > "${LOG_DIR}/crash-smoke-kill.log" 2>&1
KILL_STATUS=$?
set -e
if [[ "${KILL_STATUS}" -ne 137 ]]; then
  echo "crash smoke: expected SIGKILL exit 137, got ${KILL_STATUS}" >&2
  exit 1
fi
"${BUILD_DIR}/tools/promptctl" --dataset=SynD --technique=Prompt \
  --rate=4000 --zipf=1.0 --recover_only --store_dir="${STORE_DIR}" \
  2>&1 | tee "${LOG_DIR}/crash-smoke-recover.log"
grep -q 'durable store: recovered 6 batch(es)' \
  "${LOG_DIR}/crash-smoke-recover.log" || {
  echo "crash smoke: restart did not recover all 6 synced batches" >&2
  exit 1
}
sed -n '/^top-/,/^$/p' "${LOG_DIR}/crash-smoke-ref.log" \
  > "${LOG_DIR}/crash-smoke-ref-topk.txt"
sed -n '/^top-/,/^$/p' "${LOG_DIR}/crash-smoke-recover.log" \
  > "${LOG_DIR}/crash-smoke-recover-topk.txt"
if ! diff -u "${LOG_DIR}/crash-smoke-ref-topk.txt" \
            "${LOG_DIR}/crash-smoke-recover-topk.txt"; then
  echo "crash smoke: recovered TOP-K diverges from the uninterrupted run" >&2
  exit 1
fi
echo "crash smoke: kill-restart TOP-K identical to uninterrupted run"

# Flight-recorder smoke (DESIGN.md §16): record a 12-batch sharded adaptive
# run, replay it from the journal alone, and require bit-identical outcome
# streams (promptctl --replay exits 4 on any divergence). Then diff the
# journal against its own re-recording: zero divergent batches. Journal and
# reports land in $LOG_DIR for artifact upload.
RECORD_DIR="${LOG_DIR}/replay-smoke-journal"
rm -rf "${RECORD_DIR}" "${RECORD_DIR}.replay"
"${BUILD_DIR}/tools/promptctl" --dataset=SynD --technique=Prompt \
  --rate=4000 --batches=12 --ingest_shards=2 --zipf=1.0 --adaptive \
  --record="${RECORD_DIR}" \
  2>&1 | tee "${LOG_DIR}/replay-smoke-record.log"
"${BUILD_DIR}/tools/promptctl" --replay="${RECORD_DIR}" \
  2>&1 | tee "${LOG_DIR}/replay-smoke-replay.log"
grep -q 'journals identical over 12 published batches' \
  "${LOG_DIR}/replay-smoke-replay.log" || {
  echo "replay smoke: replay was not bit-identical over all 12 batches" >&2
  exit 1
}
"${BUILD_DIR}/tools/promptctl" \
  --diff="${RECORD_DIR},${RECORD_DIR}.replay" \
  2>&1 | tee "${LOG_DIR}/replay-smoke-diff.log"
grep -q 'journals identical' "${LOG_DIR}/replay-smoke-diff.log" || {
  echo "replay smoke: --diff found divergence between record and replay" >&2
  exit 1
}
echo "replay smoke: record -> replay -> diff bit-identical"
