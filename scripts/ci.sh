#!/usr/bin/env bash
# Tier-1 CI entry point: configure, build (the project compiles with
# -Wall -Wextra; CI additionally promotes warnings to errors), run the full
# test suite, and leave the ctest log at $LOG_DIR/ctest.log for upload.
#
# Usage: scripts/ci.sh [build-dir]
# Env:   LOG_DIR     where to write logs (default: <build-dir>)
#        SANITIZE    '', 'thread', or 'address' — forwarded to PROMPT_SANITIZE
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"
LOG_DIR="${LOG_DIR:-${BUILD_DIR}}"
SANITIZE="${SANITIZE:-}"
mkdir -p "${LOG_DIR}"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_CXX_FLAGS="-Werror" \
  -DPROMPT_SANITIZE="${SANITIZE}"
cmake --build "${BUILD_DIR}" -j "$(nproc)" 2>&1 | tee "${LOG_DIR}/build.log"

cd "${BUILD_DIR}"
ctest --output-on-failure -j "$(nproc)" 2>&1 | tee "${LOG_DIR}/ctest.log"
cd ..

# Observability smoke: a short sharded Zipf run with tracing on must produce
# exactly one JSONL trace record per batch. The trace lands in $LOG_DIR for
# artifact upload.
"${BUILD_DIR}/tools/promptctl" --dataset=SynD --technique=Prompt \
  --rate=4000 --batches=5 --ingest_shards=2 --zipf=1.0 \
  --trace_out="${LOG_DIR}/smoke-trace.jsonl" --metrics_every=5 \
  2>&1 | tee "${LOG_DIR}/smoke.log"
TRACE_LINES="$(wc -l < "${LOG_DIR}/smoke-trace.jsonl")"
if [[ "${TRACE_LINES}" -ne 5 ]]; then
  echo "observability smoke: expected 5 trace records, got ${TRACE_LINES}" >&2
  exit 1
fi
