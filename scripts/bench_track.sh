#!/usr/bin/env bash
# Runs the standardized benchmark tracker and gates against the committed
# baseline BENCH_prompt.json at the repo root.
#
#   scripts/bench_track.sh [build_dir]
#
# Environment:
#   WARN_ONLY=1        report regressions without failing (nightly mode)
#   UPDATE_BASELINE=1  rewrite the committed baseline from this run
#   NIGHTLY=1          additionally run the slow self-asserting benches
#                      (bench/sketch_scale at 10M keys), warn-only
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BASELINE="BENCH_prompt.json"
CURRENT="${BUILD_DIR}/BENCH_prompt.json"

if [[ ! -x "${BUILD_DIR}/bench/bench_track" ]]; then
  echo "bench_track not built; run: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} --target bench_track" >&2
  exit 1
fi

"${BUILD_DIR}/bench/bench_track" "${CURRENT}"

# Nightly: the full heavy-hitter frontier (10M-key Zipf, exact vs sketch at
# three capacities, self-asserting the §17 memory/BSI/inertness contract).
# Warn-only — the fast gated subset already runs above as the
# sketch_scale.* signals; this catches full-scale-only drift without letting
# a noisy host block the nightly.
if [[ "${NIGHTLY:-0}" == "1" ]]; then
  if ! "${BUILD_DIR}/bench/sketch_scale"; then
    echo "WARNING: bench/sketch_scale failed its self-checks (warn-only)" >&2
  fi
fi

if [[ "${UPDATE_BASELINE:-0}" == "1" ]]; then
  cp "${CURRENT}" "${BASELINE}"
  echo "baseline ${BASELINE} updated — commit it"
  exit 0
fi

if [[ ! -f "${BASELINE}" ]]; then
  echo "no committed baseline ${BASELINE}; run UPDATE_BASELINE=1 $0 first" >&2
  exit 1
fi

python3 scripts/check_bench_regression.py "${BASELINE}" "${CURRENT}"
