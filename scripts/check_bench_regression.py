#!/usr/bin/env python3
"""Compare a fresh BENCH_prompt.json against the committed baseline.

Usage:
    check_bench_regression.py BASELINE CURRENT

Exit codes: 0 = within tolerance, 1 = regression (or malformed input).

Gating rules:
  - Only signals marked "gate": true in the *baseline* are enforced.
  - A gated signal drifting more than its baseline tolerance_pct (relative,
    either direction — the tracked runs are virtual-time deterministic, so
    an unexplained improvement is as suspicious as a slowdown) fails.
  - A gated baseline signal missing from the current run fails: silently
    dropping a tracked signal is how regressions hide.
  - New signals in the current run are reported but never fail.

Environment:
  WARN_ONLY=1   report violations, exit 0 (first-landing / nightly mode).
"""

import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(1)
    if doc.get("schema_version") != 1 or "signals" not in doc:
        print(f"error: {path} is not a schema_version=1 bench file",
              file=sys.stderr)
        sys.exit(1)
    return {s["id"]: s for s in doc["signals"]}


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    baseline = load(sys.argv[1])
    current = load(sys.argv[2])
    warn_only = os.environ.get("WARN_ONLY") == "1"

    violations = []
    for sig_id, base in sorted(baseline.items()):
        cur = current.get(sig_id)
        if not base.get("gate", False):
            status = "ungated"
            delta = ""
            if cur is not None and base["value"] != 0:
                pct = 100.0 * (cur["value"] - base["value"]) / abs(base["value"])
                delta = f"{pct:+.3f}%"
            print(f"  {sig_id:45s} {status:10s} {delta}")
            continue
        if cur is None:
            violations.append(f"{sig_id}: gated signal missing from current run")
            print(f"  {sig_id:45s} MISSING")
            continue
        tolerance = base.get("tolerance_pct", 0.1)
        if base["value"] == 0:
            drift = 0.0 if cur["value"] == 0 else float("inf")
        else:
            drift = 100.0 * abs(cur["value"] - base["value"]) / abs(base["value"])
        ok = drift <= tolerance
        print(f"  {sig_id:45s} {'ok' if ok else 'FAIL':10s} "
              f"drift={drift:.4f}% tol={tolerance}% "
              f"({base['value']:.4f} -> {cur['value']:.4f})")
        if not ok:
            violations.append(
                f"{sig_id}: {base['value']:.4f} -> {cur['value']:.4f} "
                f"({drift:.3f}% > {tolerance}%)")

    for sig_id in sorted(set(current) - set(baseline)):
        print(f"  {sig_id:45s} new (not in baseline)")

    if violations:
        print(f"\n{len(violations)} gated signal(s) out of tolerance:")
        for v in violations:
            print(f"  - {v}")
        if warn_only:
            print("WARN_ONLY=1: reporting without failing")
            return 0
        return 1
    print("\nall gated signals within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
